#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lqo {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  LQO_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(gen_);
}

double Rng::UniformDouble(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(gen_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(gen_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(gen_);
}

int64_t Rng::Zipf(int64_t n, double s) {
  LQO_CHECK_GT(n, 0);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(static_cast<size_t>(n));
    double total = 0.0;
    for (int64_t r = 0; r < n; ++r) {
      total += std::pow(static_cast<double>(r + 1), -s);
      zipf_cdf_[static_cast<size_t>(r)] = total;
    }
    for (double& v : zipf_cdf_) v /= total;
  }
  double u = UniformDouble(0.0, 1.0);
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) --it;
  return static_cast<int64_t>(it - zipf_cdf_.begin());
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  LQO_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  LQO_CHECK_GT(total, 0.0);
  double u = UniformDouble(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  LQO_CHECK_LE(k, n);
  // Floyd's algorithm keeps this O(k) in memory for large n.
  std::vector<size_t> result;
  result.reserve(k);
  std::vector<bool> used;
  if (k * 4 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(all);
    all.resize(k);
    return all;
  }
  used.assign(n, false);
  while (result.size() < k) {
    size_t candidate =
        static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
    if (!used[candidate]) {
      used[candidate] = true;
      result.push_back(candidate);
    }
  }
  return result;
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) {
  LQO_CHECK_GT(n, 0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
    cdf_[static_cast<size_t>(r)] = total;
  }
  for (double& v : cdf_) v /= total;
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformDouble(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace lqo
