#include "common/str_util.h"

#include <cctype>
#include <cstdio>

namespace lqo {

std::vector<std::string> StrSplit(const std::string& input, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : input) {
    if (c == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string StripWhitespace(const std::string& input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string AsciiLower(const std::string& input) {
  std::string out = input;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return buffer;
}

}  // namespace lqo
