#ifndef LQO_COMMON_STATS_UTIL_H_
#define LQO_COMMON_STATS_UTIL_H_

#include <vector>

namespace lqo {

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& values);

/// Population standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// q-th quantile (q in [0,1]) with linear interpolation, copying and sorting
/// the input. 0 for an empty input.
double Quantile(std::vector<double> values, double q);

/// Geometric mean; requires strictly positive values. 0 for an empty input.
double GeometricMean(const std::vector<double>& values);

/// Pearson correlation of two equal-length vectors; 0 when undefined.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation; 0 when undefined. Ties get average ranks.
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace lqo

#endif  // LQO_COMMON_STATS_UTIL_H_
