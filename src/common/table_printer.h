#ifndef LQO_COMMON_TABLE_PRINTER_H_
#define LQO_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace lqo {

/// Renders aligned ASCII result tables for the benchmark binaries, e.g.
///
///   +---------+-------+-------+
///   | method  |  p50  |  p99  |
///   +---------+-------+-------+
///   | hist    |  1.20 | 45.00 |
///   +---------+-------+-------+
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table; optionally prefixed by a title line.
  std::string ToString(const std::string& title = "") const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lqo

#endif  // LQO_COMMON_TABLE_PRINTER_H_
