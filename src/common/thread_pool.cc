#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/logging.h"

namespace lqo {
namespace {

// Set for the lifetime of each worker thread; lets ParallelFor detect
// nesting and degrade to inline execution instead of deadlocking on a full
// pool.
thread_local bool t_in_worker = false;

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool>* slot = new std::unique_ptr<ThreadPool>();
  return *slot;
}

std::mutex& GlobalMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Serial pool: run immediately on the caller.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::InWorker() { return t_in_worker; }

int ThreadPool::ParseThreadCount(const char* value) {
  int fallback = static_cast<int>(std::thread::hardware_concurrency());
  if (fallback <= 0) fallback = 1;
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<int>(std::min<long>(parsed, 256));
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalSlot();
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(
        ParseThreadCount(std::getenv("LQO_THREADS")));
  }
  return *slot;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  GlobalSlot() = std::make_unique<ThreadPool>(num_threads);
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 ThreadPool* pool) {
  if (n == 0) return;
  if (pool == nullptr) pool = &ThreadPool::Global();
  // Serial fast paths: one-thread pool, tiny loops, or nested calls from a
  // worker (running inline keeps the pool deadlock-free). All paths visit
  // indices 0..n-1, so results never depend on which path ran.
  if (pool->num_threads() <= 1 || n == 1 || ThreadPool::InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  size_t num_chunks =
      std::min(n, static_cast<size_t>(pool->num_threads()) * 4);
  struct State {
    std::mutex mutex;  // guards: remaining (chunk-completion handshake)
    std::condition_variable done;
    size_t remaining;
    std::vector<std::exception_ptr> errors;
  };
  State state;
  state.remaining = num_chunks;
  state.errors.assign(num_chunks, nullptr);

  auto run_chunk = [&](size_t chunk) {
    size_t begin = chunk * n / num_chunks;
    size_t end = (chunk + 1) * n / num_chunks;
    try {
      for (size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      state.errors[chunk] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(state.mutex);
      --state.remaining;
      // Notify while holding the lock: the waiting caller destroys `state`
      // as soon as it observes remaining == 0, so notifying after unlock
      // could touch a dead condition variable.
      state.done.notify_one();
    }
  };

  // The calling thread takes chunk 0 itself so an N-thread pool really uses
  // N threads (N-1 workers + caller).
  for (size_t c = 1; c < num_chunks; ++c) {
    pool->Submit([&, c] { run_chunk(c); });
  }
  run_chunk(0);
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.done.wait(lock, [&] { return state.remaining == 0; });
  }
  // Deterministic error choice: first failing chunk wins, independent of
  // scheduling order.
  for (const std::exception_ptr& error : state.errors) {
    if (error != nullptr) std::rethrow_exception(error);
  }
}

}  // namespace lqo
