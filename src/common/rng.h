#ifndef LQO_COMMON_RNG_H_
#define LQO_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace lqo {

/// Derives an independent stream seed from (seed, stream) via splitmix64
/// finalization. Parallel loops give task i the stream `DeriveSeed(seed, i)`
/// so random draws are per-task, not per-iteration-order — the foundation of
/// thread-count-independent training (see DESIGN.md "Concurrency model").
inline uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Deterministic random number source. Every stochastic component in the
/// library draws from an explicitly seeded Rng so experiments are exactly
/// reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard-normal sample scaled to (mean, stddev).
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed value in [0, n): rank r has weight (r+1)^-s.
  /// Uses an inverse-CDF table; intended for n up to a few million.
  int64_t Zipf(int64_t n, double s);

  /// Samples an index in [0, weights.size()) proportional to weights.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Access to the underlying engine for std:: distributions.
  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
  // Cached Zipf CDF keyed by (n, s) of the last call; regenerating the table
  // per call would dominate dataset generation.
  int64_t zipf_n_ = -1;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

/// Precomputed Zipf sampler: rank r in [0, n) has weight (r+1)^-s. Prefer
/// this over Rng::Zipf when sampling many values from the same distribution
/// or interleaving several distributions.
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t n, double s);

  int64_t Sample(Rng& rng) const;

  int64_t n() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace lqo

#endif  // LQO_COMMON_RNG_H_
