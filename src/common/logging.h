#ifndef LQO_COMMON_LOGGING_H_
#define LQO_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace lqo {

/// Severity levels understood by LQO_LOG.
enum class LogLevel { kInfo, kWarning, kError, kFatal };

namespace internal_logging {

/// Accumulates one log line and flushes it (aborting on kFatal) when the
/// temporary dies at the end of the statement.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (level_ == LogLevel::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelTag(LogLevel level) {
    switch (level) {
      case LogLevel::kInfo:
        return "I";
      case LogLevel::kWarning:
        return "W";
      case LogLevel::kError:
        return "E";
      case LogLevel::kFatal:
        return "F";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

/// Helper that swallows the stream expression in the non-triggered branch of
/// a CHECK macro without warnings.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace lqo

#define LQO_LOG(level)                                                 \
  ::lqo::internal_logging::LogMessage(::lqo::LogLevel::k##level,       \
                                      __FILE__, __LINE__)              \
      .stream()

/// Aborts the process with a message when `condition` is false.
#define LQO_CHECK(condition)                                           \
  (condition) ? (void)0                                                \
              : ::lqo::internal_logging::Voidify() &                   \
                    ::lqo::internal_logging::LogMessage(               \
                        ::lqo::LogLevel::kFatal, __FILE__, __LINE__)   \
                        .stream()                                      \
                        << "Check failed: " #condition " "

#define LQO_CHECK_EQ(a, b) LQO_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define LQO_CHECK_NE(a, b) LQO_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define LQO_CHECK_LT(a, b) LQO_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define LQO_CHECK_LE(a, b) LQO_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define LQO_CHECK_GT(a, b) LQO_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define LQO_CHECK_GE(a, b) LQO_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // LQO_COMMON_LOGGING_H_
