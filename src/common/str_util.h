#ifndef LQO_COMMON_STR_UTIL_H_
#define LQO_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace lqo {

/// Joins the elements of `parts` with `sep` using operator<<.
template <typename Container>
std::string StrJoin(const Container& parts, const std::string& sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) out << sep;
    out << part;
    first = false;
  }
  return out.str();
}

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& input, char delim);

/// Strips ASCII whitespace from both ends.
std::string StripWhitespace(const std::string& input);

/// Lowercases ASCII characters.
std::string AsciiLower(const std::string& input);

/// Formats a double with `digits` significant digits, trimming zeros.
std::string FormatDouble(double value, int digits = 4);

}  // namespace lqo

#endif  // LQO_COMMON_STR_UTIL_H_
