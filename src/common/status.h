#ifndef LQO_COMMON_STATUS_H_
#define LQO_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace lqo {

/// Error categories used across the library. We deliberately keep the set
/// small; the message carries the details.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// A lightweight absl::Status lookalike. Fallible public APIs return Status
/// (or StatusOr<T>) instead of throwing; internal invariants use LQO_CHECK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: bad column".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::kNotFound:
        return "NOT_FOUND";
      case StatusCode::kFailedPrecondition:
        return "FAILED_PRECONDITION";
      case StatusCode::kInternal:
        return "INTERNAL";
      case StatusCode::kUnimplemented:
        return "UNIMPLEMENTED";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Dereferencing a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value / Status mirrors absl::StatusOr ergonomics.
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : data_(std::move(status)) {  // NOLINT
    LQO_CHECK(!std::get<Status>(data_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    LQO_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    LQO_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    LQO_CHECK(ok()) << status().ToString();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace lqo

/// Propagates a non-OK Status out of the current function.
#define LQO_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::lqo::Status lqo_status_ = (expr);           \
    if (!lqo_status_.ok()) return lqo_status_;    \
  } while (false)

#endif  // LQO_COMMON_STATUS_H_
