#ifndef LQO_COMMON_THREAD_ANNOTATIONS_H_
#define LQO_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis macros, no-ops under GCC (the baked-in CI
// toolchain). Every `// guards:` comment that lqo-lint enforces has a
// machine-checkable twin here: annotate the guarded field with
// LQO_GUARDED_BY(mutex) and the locking protocol becomes verifiable with
//   clang++ -Wthread-safety
// the day clang joins CI. See DESIGN.md "Static analysis & correctness
// gates".
#if defined(__clang__)
#define LQO_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LQO_THREAD_ANNOTATION_(x)
#endif

// Declares that a field may only be read or written while holding `x`.
#define LQO_GUARDED_BY(x) LQO_THREAD_ANNOTATION_(guarded_by(x))
// As above for the pointee of a pointer field.
#define LQO_PT_GUARDED_BY(x) LQO_THREAD_ANNOTATION_(pt_guarded_by(x))
// Function precondition: caller must hold the capability (exclusively).
#define LQO_REQUIRES(...) \
  LQO_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
// Function precondition: caller must hold the capability at least shared.
#define LQO_REQUIRES_SHARED(...) \
  LQO_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
// Function precondition: caller must NOT hold the capability (the function
// acquires it itself; calling with it held would deadlock).
#define LQO_EXCLUDES(...) LQO_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
// Function acquires/releases the capability (lock/unlock wrappers).
#define LQO_ACQUIRE(...) LQO_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define LQO_RELEASE(...) LQO_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
// Escape hatch for functions the analysis cannot see through.
#define LQO_NO_THREAD_SAFETY_ANALYSIS \
  LQO_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // LQO_COMMON_THREAD_ANNOTATIONS_H_
