#include "common/stats_util.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace lqo {
namespace {

// Average ranks with tie handling, 1-based.
std::vector<double> Ranks(const std::vector<double>& values) {
  size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  LQO_CHECK_GE(q, 0.0);
  LQO_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    LQO_CHECK_GT(v, 0.0) << "GeometricMean requires positive values";
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  LQO_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  LQO_CHECK_EQ(x.size(), y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(Ranks(x), Ranks(y));
}

}  // namespace lqo
