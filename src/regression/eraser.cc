#include "regression/eraser.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "costmodel/plan_featurizer.h"

namespace lqo {

EraserGuard::EraserGuard(const E2eContext& context,
                         LearnedQueryOptimizer* inner, EraserOptions options)
    : context_(context), inner_(inner), options_(options) {
  LQO_CHECK(inner_ != nullptr);
}

bool EraserGuard::WithinSeenRanges(const std::vector<double>& features) const {
  LQO_CHECK_EQ(features.size(), feature_min_.size());
  for (size_t i = 0; i < features.size(); ++i) {
    double span = std::max(1e-9, feature_max_[i] - feature_min_[i]);
    double slack = options_.range_slack * span;
    if (features[i] < feature_min_[i] - slack ||
        features[i] > feature_max_[i] + slack) {
      return false;
    }
  }
  return true;
}

PhysicalPlan EraserGuard::ChoosePlan(const Query& query) {
  PhysicalPlan learned = inner_->ChoosePlan(query);
  if (!guard_ready_) return learned;

  PhysicalPlan native = NativePlan(context_, query);
  if (learned.Signature() == native.Signature()) return learned;
  std::vector<double> features =
      FeaturizePlanCachedVec(context_, query, learned, /*annotated=*/false);

  // Stage 1: coarse filter on unseen feature values.
  if (!WithinSeenRanges(features)) {
    ++fallbacks_;
    return native;
  }
  // Stage 2: cluster reliability.
  if (clusters_.fitted()) {
    size_t cluster = clusters_.Assign(features);
    if (cluster < cluster_reliable_.size() &&
        !cluster_reliable_[cluster]) {
      ++fallbacks_;
      return native;
    }
  }
  return learned;
}

std::vector<PhysicalPlan> EraserGuard::TrainingCandidates(const Query& query) {
  std::vector<PhysicalPlan> candidates;
  PhysicalPlan learned = inner_->ChoosePlan(query);
  PhysicalPlan native = NativePlan(context_, query);
  bool same = learned.Signature() == native.Signature();
  candidates.push_back(std::move(learned));
  if (!same) candidates.push_back(std::move(native));
  return candidates;
}

CandidateSet EraserGuard::TrainingCandidateSet(const Query& query) {
  CandidateSet set;
  set.plans = TrainingCandidates(query);
  // The guard itself does not score candidates (the inner optimizer already
  // picked plans[0]); featurizing the pair here still pays off by warming
  // the shared plan-signature cache so Observe's per-plan clone+annotate
  // walk becomes a cache hit.
  set.features.Reset(PlanFeaturizer::kDim);
  set.features.Reserve(set.plans.size());
  for (const PhysicalPlan& plan : set.plans) {
    FeaturizePlanCached(context_, query, plan, /*annotated=*/false,
                        set.features.AppendRow());
  }
  return set;
}

void EraserGuard::Observe(const Query& query, const PhysicalPlan& plan,
                          double time_units) {
  inner_->Observe(query, plan, time_units);

  std::string key = Subquery{&query, query.AllTables()}.Key();
  PhysicalPlan native = NativePlan(context_, query);
  bool is_native = plan.Signature() == native.Signature();

  PairedObservation& pending = pending_[key];
  if (is_native) {
    pending.native_time = time_units;
    // The native plan may also *be* the learned choice; record features if
    // none yet so singleton pairs still complete.
    if (pending.learned_time < 0) {
      pending.learned_features =
          FeaturizePlanCachedVec(context_, query, plan, /*annotated=*/false);
      pending.learned_time = time_units;
    }
  } else {
    pending.learned_features =
        FeaturizePlanCachedVec(context_, query, plan, /*annotated=*/false);
    pending.learned_time = time_units;
  }
  if (pending.learned_time >= 0 && pending.native_time >= 0) {
    completed_.push_back(pending);
    pending_.erase(key);
  }
}

void EraserGuard::Retrain() {
  inner_->Retrain();
  if (completed_.size() < 8) return;

  // Stage 1 ranges.
  size_t dim = completed_[0].learned_features.size();
  feature_min_.assign(dim, std::numeric_limits<double>::infinity());
  feature_max_.assign(dim, -std::numeric_limits<double>::infinity());
  std::vector<std::vector<double>> all_features;
  for (const PairedObservation& obs : completed_) {
    for (size_t i = 0; i < dim; ++i) {
      feature_min_[i] = std::min(feature_min_[i], obs.learned_features[i]);
      feature_max_[i] = std::max(feature_max_[i], obs.learned_features[i]);
    }
    all_features.push_back(obs.learned_features);
  }

  // Stage 2 clusters + per-cluster reliability.
  KMeansOptions km_options;
  km_options.k = options_.num_clusters;
  km_options.seed = options_.seed;
  clusters_ = KMeans(km_options);
  clusters_.Fit(all_features);
  std::vector<double> learned_total(clusters_.centroids().size(), 0.0);
  std::vector<double> native_total(clusters_.centroids().size(), 0.0);
  for (size_t i = 0; i < completed_.size(); ++i) {
    size_t cluster = clusters_.labels()[i];
    learned_total[cluster] += completed_[i].learned_time;
    native_total[cluster] += completed_[i].native_time;
  }
  cluster_reliable_.assign(clusters_.centroids().size(), true);
  for (size_t c = 0; c < cluster_reliable_.size(); ++c) {
    if (native_total[c] <= 0) continue;
    cluster_reliable_[c] =
        learned_total[c] <= native_total[c] * options_.regression_threshold;
  }
  guard_ready_ = true;
}

}  // namespace lqo
