#ifndef LQO_REGRESSION_ERASER_H_
#define LQO_REGRESSION_ERASER_H_

#include <map>
#include <string>
#include <vector>

#include "e2e/framework.h"
#include "ml/kmeans.h"

namespace lqo {

/// Options for the Eraser guard.
struct EraserOptions {
  int num_clusters = 4;
  /// A cluster is unreliable when its learned plans were at least this
  /// factor slower than native in aggregate.
  double regression_threshold = 1.05;
  /// Stage-1 slack: feature values this far (relatively) outside the seen
  /// range count as unseen.
  double range_slack = 0.10;
  uint64_t seed = 2701;
};

/// Eraser [62]: a plugin deployed on top of any learned query optimizer to
/// eliminate performance regressions with a two-stage strategy:
///  1) a coarse filter rejects plans whose features contain values never
///     seen during training (high extrapolation risk), and
///  2) a fine-grained plan clustering falls back to the native plan in
///     regions where the learned optimizer's past choices under-performed
///     the native optimizer.
/// Training observations must include native executions (TrainingCandidates
/// returns the learned choice plus the native plan).
class EraserGuard : public LearnedQueryOptimizer {
 public:
  EraserGuard(const E2eContext& context, LearnedQueryOptimizer* inner,
              EraserOptions options = EraserOptions());

  PhysicalPlan ChoosePlan(const Query& query) override;
  std::vector<PhysicalPlan> TrainingCandidates(const Query& query) override;
  CandidateSet TrainingCandidateSet(const Query& query) override;
  void Observe(const Query& query, const PhysicalPlan& plan,
               double time_units) override;
  void Retrain() override;
  std::string Name() const override { return inner_->Name() + "+eraser"; }
  bool trained() const override { return guard_ready_; }

  /// Stage-1 check exposed for tests: true if `features` lies inside the
  /// training ranges.
  bool WithinSeenRanges(const std::vector<double>& features) const;

  /// Fallback decisions made so far (for reporting).
  int fallbacks() const { return fallbacks_; }

 private:
  struct PairedObservation {
    std::vector<double> learned_features;
    double learned_time = -1.0;
    double native_time = -1.0;
  };

  E2eContext context_;
  LearnedQueryOptimizer* inner_;
  EraserOptions options_;

  /// Per-query accumulation of (learned, native) execution pairs.
  std::map<std::string, PairedObservation> pending_;
  std::vector<PairedObservation> completed_;

  // Guard state (rebuilt by Retrain).
  bool guard_ready_ = false;
  std::vector<double> feature_min_;
  std::vector<double> feature_max_;
  KMeans clusters_;
  std::vector<bool> cluster_reliable_;
  int fallbacks_ = 0;
};

}  // namespace lqo

#endif  // LQO_REGRESSION_ERASER_H_
