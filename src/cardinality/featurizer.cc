#include "cardinality/featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "query/workload.h"

namespace lqo {
namespace {

std::string CanonicalEdgeKey(const std::string& a_table,
                             const std::string& a_col,
                             const std::string& b_table,
                             const std::string& b_col) {
  std::string a = a_table + "." + a_col;
  std::string b = b_table + "." + b_col;
  if (b < a) std::swap(a, b);
  return a + "=" + b;
}

}  // namespace

QueryFeaturizer::QueryFeaturizer(const Catalog* catalog,
                                 const StatsCatalog* stats)
    : catalog_(catalog), stats_(stats) {
  LQO_CHECK(catalog_ != nullptr);
  LQO_CHECK(stats_ != nullptr);
  for (const std::string& table : catalog_->table_names()) {
    table_slot_[table] = table_slot_.size();
  }
  for (const JoinEdge& edge : catalog_->join_edges()) {
    edge_keys_.push_back(CanonicalEdgeKey(edge.left_table, edge.left_column,
                                          edge.right_table,
                                          edge.right_column));
  }
  std::sort(edge_keys_.begin(), edge_keys_.end());
  for (const std::string& table : catalog_->table_names()) {
    for (const std::string& column : PredicateColumns(*catalog_, table)) {
      column_slot_index_[table + "." + column] = column_slots_.size();
      column_slots_.push_back({table, column});
    }
  }
  dim_ = table_slot_.size() + edge_keys_.size() + 4 * column_slots_.size() + 2;
}

std::vector<std::pair<size_t, size_t>> QueryFeaturizer::PredicateSlotRanges()
    const {
  std::vector<std::pair<size_t, size_t>> ranges;
  size_t column_base = table_slot_.size() + edge_keys_.size();
  for (size_t s = 0; s < column_slots_.size(); ++s) {
    ranges.emplace_back(column_base + 4 * s, 4);
  }
  return ranges;
}

std::vector<double> QueryFeaturizer::Featurize(const Subquery& subquery) const {
  std::vector<double> features(dim_);
  FeaturizeInto(subquery, features.data());
  return features;
}

void QueryFeaturizer::FeaturizeInto(const Subquery& subquery,
                                    double* features) const {
  const Query& query = *subquery.query;
  for (size_t i = 0; i < dim_; ++i) features[i] = 0.0;

  size_t edge_base = table_slot_.size();
  size_t column_base = edge_base + edge_keys_.size();
  size_t global_base = column_base + 4 * column_slots_.size();

  double log_domain = 0.0;
  int num_tables = 0;
  for (int t = 0; t < query.num_tables(); ++t) {
    if (!ContainsTable(subquery.tables, t)) continue;
    ++num_tables;
    const std::string& name =
        query.tables()[static_cast<size_t>(t)].table_name;
    auto slot = table_slot_.find(name);
    if (slot != table_slot_.end()) features[slot->second] = 1.0;
    log_domain +=
        std::log(static_cast<double>(stats_->Of(name).row_count) + 1.0);
  }

  for (const QueryJoin& join : query.JoinsWithin(subquery.tables)) {
    std::string key = CanonicalEdgeKey(
        query.tables()[static_cast<size_t>(join.left_table)].table_name,
        join.left_column,
        query.tables()[static_cast<size_t>(join.right_table)].table_name,
        join.right_column);
    auto it = std::lower_bound(edge_keys_.begin(), edge_keys_.end(), key);
    if (it != edge_keys_.end() && *it == key) {
      features[edge_base +
               static_cast<size_t>(it - edge_keys_.begin())] = 1.0;
    }
  }

  for (const Predicate& p : query.predicates()) {
    if (!ContainsTable(subquery.tables, p.table_index)) continue;
    const std::string& table =
        query.tables()[static_cast<size_t>(p.table_index)].table_name;
    auto slot_it = column_slot_index_.find(table + "." + p.column);
    if (slot_it == column_slot_index_.end()) continue;
    size_t base = column_base + 4 * slot_it->second;
    const ColumnStats& cs = stats_->Of(table).ColumnStatsOf(p.column);
    double span =
        std::max<double>(1.0, static_cast<double>(cs.max_value - cs.min_value));
    int64_t lo = 0, hi = 0;
    switch (p.kind) {
      case PredicateKind::kEquals:
        lo = hi = p.value;
        break;
      case PredicateKind::kRange:
        lo = p.lo;
        hi = p.hi;
        break;
      case PredicateKind::kIn:
        lo = p.in_values.front();
        hi = p.in_values.back();
        break;
    }
    double lo_norm = std::clamp(
        (static_cast<double>(lo) - static_cast<double>(cs.min_value)) / span,
        0.0, 1.0);
    double hi_norm = std::clamp(
        (static_cast<double>(hi) - static_cast<double>(cs.min_value)) / span,
        0.0, 1.0);
    double sel = cs.Selectivity(p);
    // Multiple predicates on one column: keep the tighter box, combine
    // selectivities multiplicatively in log space.
    if (features[base] > 0.0) {
      features[base + 1] = std::max(features[base + 1], lo_norm);
      features[base + 2] = std::min(features[base + 2], hi_norm);
      features[base + 3] += std::log(sel);
    } else {
      features[base] = 1.0;
      features[base + 1] = lo_norm;
      features[base + 2] = hi_norm;
      features[base + 3] = std::log(sel);
    }
  }

  features[global_base] = static_cast<double>(num_tables);
  features[global_base + 1] = log_domain;
}

}  // namespace lqo
