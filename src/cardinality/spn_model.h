#ifndef LQO_CARDINALITY_SPN_MODEL_H_
#define LQO_CARDINALITY_SPN_MODEL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cardinality/table_model.h"
#include "storage/table.h"

namespace lqo {

/// Options for the sum-product network builder.
struct SpnOptions {
  int max_bins = 40;
  /// Stop splitting below this many rows; emit a product of leaves.
  size_t min_rows = 256;
  /// |Pearson correlation| below which two columns are considered
  /// independent (product split).
  double independence_threshold = 0.25;
  /// Row clusters per sum split.
  int sum_clusters = 2;
  int max_depth = 8;
  uint64_t seed = 701;
};

/// DeepDB-style sum-product network [17]: recursive structure with
///  - product nodes over (approximately) independent column groups,
///  - sum nodes over k-means row clusters,
///  - histogram leaves over single columns.
/// FLAT's FSPN [81] refinement (factorize highly-correlated columns first)
/// is approximated by the correlation-driven product splits.
///
/// Training parallelizes over the independent child regions created by each
/// product/sum split (and over columns during discretization) on the shared
/// ThreadPool; results are bit-for-bit identical at any thread count.
class SpnTableModel : public SingleTableDistribution {
 public:
  SpnTableModel(const Table* table, SpnOptions options = SpnOptions());

  double Selectivity(const Query& query, int table_index) const override;
  std::vector<double> FilteredKeyHistogram(
      const Query& query, int table_index, const std::string& key_column,
      const KeyBuckets& buckets) const override;
  std::string Kind() const override { return "spn"; }

  /// Number of nodes in the built network (for reporting / tests).
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    enum class Type { kSum, kProduct, kLeaf };
    Type type = Type::kLeaf;
    // kSum / kProduct children.
    std::vector<int> children;
    std::vector<double> weights;  // kSum only, sums to 1.
    // kLeaf payload.
    size_t var = 0;                     // column index
    std::vector<double> distribution;   // P(bin), over binnings_[var]
  };

  /// A per-variable box constraint: allowed fraction per bin.
  using BinConstraints = std::vector<std::vector<double>>;

  /// A locally-built SPN fragment with node indices relative to `nodes`;
  /// independent child regions build fragments in parallel tasks and the
  /// parent splices them in child order (see DESIGN.md "Concurrency
  /// model"), so the final node layout is a function of the data only,
  /// never of the thread count.
  struct Subtree {
    std::vector<Node> nodes;
    int root = -1;
  };

  Subtree Build(const std::vector<size_t>& rows,
                const std::vector<size_t>& vars, int depth) const;
  Node MakeLeaf(const std::vector<size_t>& rows, size_t var) const;
  /// Appends `sub`'s nodes to `*nodes` (offsetting child indices) and
  /// returns the new index of its root.
  static int Splice(Subtree&& sub, std::vector<Node>* nodes);
  double Evaluate(int node, const BinConstraints& constraints) const;
  BinConstraints ConstraintsOf(const Query& query, int table_index) const;

  const Table* table_;
  SpnOptions options_;
  std::vector<ColumnBinning> binnings_;
  std::map<std::string, size_t> var_of_column_;
  std::vector<std::vector<int64_t>> binned_;  // per var, per row
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_SPN_MODEL_H_
