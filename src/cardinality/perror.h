#ifndef LQO_CARDINALITY_PERROR_H_
#define LQO_CARDINALITY_PERROR_H_

#include <vector>

#include "engine/true_cardinality.h"
#include "optimizer/optimizer.h"
#include "query/workload.h"

namespace lqo {

/// P-error (plan error), the metric the CE-for-query-optimization
/// literature converged on (Han et al. [12]; related to Flow-Loss [44]):
/// instead of scoring estimates in isolation (q-error), score the *plan*
/// they induce. For a query Q and estimator E,
///
///   P-error(Q, E) = TrueCost(plan chosen under E)
///                 / TrueCost(plan chosen under exact cardinalities)
///
/// where TrueCost evaluates a plan with the analytical cost model fed the
/// exact cardinalities. P-error >= 1, and equals 1 exactly when the
/// estimation errors do not change the optimizer's choice — the property
/// q-error cannot see.
class PErrorEvaluator {
 public:
  PErrorEvaluator(const Optimizer* optimizer,
                  const AnalyticalCostModel* cost_model,
                  TrueCardinalityService* truth);

  /// P-error of one query under `estimator`.
  double PError(const Query& query, CardinalityEstimatorInterface* estimator);

  /// P-errors for a workload.
  std::vector<double> Evaluate(const Workload& workload,
                               CardinalityEstimatorInterface* estimator);

 private:
  /// True cost of a plan: analytical formulas + exact cardinalities.
  double TrueCost(PhysicalPlan* plan);

  Optimizer const* optimizer_;
  const AnalyticalCostModel* cost_model_;
  TrueCardinalityService* truth_;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_PERROR_H_
