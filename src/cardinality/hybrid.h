#ifndef LQO_CARDINALITY_HYBRID_H_
#define LQO_CARDINALITY_HYBRID_H_

#include <memory>
#include <string>

#include "cardinality/data_driven.h"
#include "cardinality/featurizer.h"
#include "cardinality/training_data.h"
#include "ml/gbdt.h"
#include "optimizer/cardinality_interface.h"

namespace lqo {

/// UAE-style hybrid estimator [63]: an unsupervised data model (the
/// autoregressive estimator) corrected by a supervised residual model
/// trained on the query workload — the "learn from both data and queries"
/// idea, realized as a GBDT on query features predicting the data model's
/// log residual.
class UaeEstimator : public CardinalityEstimatorInterface {
 public:
  UaeEstimator(const Catalog* catalog, const StatsCatalog* stats);

  /// Builds the data model and fits the residual corrector on `data`.
  void Train(const CeTrainingData& data);

  double EstimateSubquery(const Subquery& subquery) override;

  /// Batched estimation: data-model estimates fan out over the pool while
  /// the corrector runs one batched GBDT pass over a reusable feature
  /// matrix — element i bit-identical to EstimateSubquery(subqueries[i]).
  std::vector<double> EstimateSubqueryBatch(
      const std::vector<Subquery>& subqueries) override;

  std::string Name() const override { return "uae_hybrid"; }

  /// Batched-inference counters of the residual corrector.
  InferenceStatsSnapshot InferenceStats() const { return corrector_.Stats(); }

  /// The uncorrected data-model estimate (for the ablation bench).
  double DataOnlyEstimate(const Subquery& subquery);

 private:
  DataDrivenEstimator data_model_;
  QueryFeaturizer featurizer_;
  GradientBoostedTrees corrector_;
  bool trained_ = false;
  /// Reused across EstimateSubqueryBatch calls (capacity persists).
  FeatureMatrix batch_scratch_;
};

/// GLUE-style estimator [82]: picks the best per-table model family by
/// validating single-table estimates against the training workload, then
/// merges the chosen single-table models across joins with key-bucket
/// histograms.
std::unique_ptr<DataDrivenEstimator> MakeGlueEstimator(
    const Catalog* catalog, const StatsCatalog* stats,
    const CeTrainingData& data);

}  // namespace lqo

#endif  // LQO_CARDINALITY_HYBRID_H_
