#include "cardinality/sketch_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats_util.h"

namespace lqo {

SketchTableModel::SketchTableModel(const Table* table, int bins_1d,
                                   int bins_2d,
                                   double correlation_threshold)
    : table_(table) {
  LQO_CHECK(table_ != nullptr);
  LQO_CHECK_GT(table_->num_rows(), 0u);

  // Discretize; 2-D sketches use a coarser binning to bound the budget.
  std::vector<std::vector<int64_t>> coarse_codes;
  std::vector<ColumnBinning> coarse_binnings;
  for (const Column& col : table_->columns()) {
    column_names_.push_back(col.name);
    var_of_column_[col.name] = binnings_.size();
    binnings_.push_back(ColumnBinning::BuildEquiDepth(col.data, bins_1d));
    coarse_binnings.push_back(
        ColumnBinning::BuildEquiDepth(col.data, bins_2d));
    std::vector<int64_t> codes(col.data.size());
    for (size_t r = 0; r < col.data.size(); ++r) {
      codes[r] = coarse_binnings.back().BinOf(col.data[r]);
    }
    coarse_codes.push_back(std::move(codes));
  }
  size_t v = binnings_.size();

  // 1-D marginals over the fine binning.
  marginals_.resize(v);
  double n = static_cast<double>(table_->num_rows());
  for (size_t i = 0; i < v; ++i) {
    marginals_[i].assign(static_cast<size_t>(binnings_[i].num_bins()), 0.5);
    const Column& col = table_->column(i);
    for (int64_t value : col.data) {
      marginals_[i][static_cast<size_t>(binnings_[i].BinOf(value))] += 1.0;
    }
    double total = 0.0;
    for (double c : marginals_[i]) total += c;
    for (double& c : marginals_[i]) c /= total;
  }

  // Greedy pairing by |Pearson| on raw values (Iris's budget allocation to
  // the column sets that co-vary).
  std::vector<std::vector<double>> values(v);
  for (size_t i = 0; i < v; ++i) {
    values[i].reserve(table_->num_rows());
    for (int64_t value : table_->column(i).data) {
      values[i].push_back(static_cast<double>(value));
    }
  }
  struct Candidate {
    double corr;
    size_t a, b;
  };
  std::vector<Candidate> candidates;
  for (size_t a = 0; a < v; ++a) {
    for (size_t b = a + 1; b < v; ++b) {
      double corr = std::abs(PearsonCorrelation(values[a], values[b]));
      if (corr >= correlation_threshold) candidates.push_back({corr, a, b});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.corr > y.corr;
            });
  pair_of_var_.assign(v, -1);
  for (const Candidate& candidate : candidates) {
    if (pair_of_var_[candidate.a] >= 0 || pair_of_var_[candidate.b] >= 0) {
      continue;  // each variable joins at most one pair.
    }
    PairSketch sketch;
    sketch.var_a = candidate.a;
    sketch.var_b = candidate.b;
    size_t bins_a =
        static_cast<size_t>(coarse_binnings[candidate.a].num_bins());
    size_t bins_b =
        static_cast<size_t>(coarse_binnings[candidate.b].num_bins());
    sketch.joint.assign(bins_a * bins_b, 0.2);  // smoothing
    for (size_t r = 0; r < table_->num_rows(); ++r) {
      sketch.joint[static_cast<size_t>(coarse_codes[candidate.a][r]) *
                       bins_b +
                   static_cast<size_t>(coarse_codes[candidate.b][r])] += 1.0;
    }
    double total = 0.0;
    for (double c : sketch.joint) total += c;
    for (double& c : sketch.joint) c /= total;
    pair_of_var_[candidate.a] = static_cast<int>(pairs_.size());
    pair_of_var_[candidate.b] = static_cast<int>(pairs_.size());
    pairs_.push_back(std::move(sketch));
  }
  // Pairs use the coarse binning at query time: store it by replacing the
  // fine binning for paired variables' joint lookups. Keep both: the pair
  // evaluation re-bins through coarse_binnings captured below.
  coarse_binnings_ = std::move(coarse_binnings);
  (void)n;
}

void SketchTableModel::ConstraintsOf(
    const Query& query, int table_index,
    std::vector<std::vector<double>>* allowed,
    std::vector<bool>* constrained) const {
  size_t v = binnings_.size();
  allowed->resize(v);
  constrained->assign(v, false);
  for (size_t i = 0; i < v; ++i) {
    (*allowed)[i].assign(static_cast<size_t>(binnings_[i].num_bins()), 1.0);
  }
  for (const Predicate& p : query.PredicatesOf(table_index)) {
    size_t i = var_of_column_.at(p.column);
    (*constrained)[i] = true;
    const ColumnBinning& binning = binnings_[i];
    for (int b = 0; b < binning.num_bins(); ++b) {
      double frac = 0.0;
      switch (p.kind) {
        case PredicateKind::kEquals:
          frac = binning.OverlapFraction(b, p.value, p.value);
          break;
        case PredicateKind::kRange:
          frac = binning.OverlapFraction(b, p.lo, p.hi);
          break;
        case PredicateKind::kIn:
          for (int64_t value : p.in_values) {
            frac += binning.OverlapFraction(b, value, value);
          }
          frac = std::min(frac, 1.0);
          break;
      }
      (*allowed)[i][static_cast<size_t>(b)] *= frac;
    }
  }
}

double SketchTableModel::GroupSelectivity(
    const std::vector<std::vector<double>>& allowed) const {
  // Per-variable 1-D selectivities first.
  size_t v = binnings_.size();
  std::vector<double> marginal_selectivity(v, 1.0);
  for (size_t i = 0; i < v; ++i) {
    double s = 0.0;
    for (size_t b = 0; b < allowed[i].size(); ++b) {
      s += marginals_[i][b] * allowed[i][b];
    }
    marginal_selectivity[i] = std::clamp(s, 1e-9, 1.0);
  }

  double selectivity = 1.0;
  std::vector<bool> handled(v, false);
  for (const PairSketch& sketch : pairs_) {
    // Joint selectivity over the coarse grid: the allowed fraction of each
    // coarse bin is approximated by the allowed fraction of its value
    // range under the fine binning (re-binned via OverlapFraction of the
    // coarse bin range against... we instead fold the fine allowed vector
    // into coarse allowed by range intersection).
    const ColumnBinning& ca = coarse_binnings_[sketch.var_a];
    const ColumnBinning& cb = coarse_binnings_[sketch.var_b];
    auto coarse_allowed = [&](size_t var, const ColumnBinning& coarse,
                              int bin) {
      // Fraction of the coarse bin's range allowed under the fine vector.
      const ColumnBinning& fine = binnings_[var];
      int64_t lo = coarse.BinLow(bin), hi = coarse.BinHigh(bin);
      int first = fine.BinOf(lo), last = fine.BinOf(hi);
      double mass = 0.0, weight = 0.0;
      for (int fb = first; fb <= last; ++fb) {
        double overlap = fine.OverlapFraction(fb, lo, hi);
        if (overlap <= 0.0) continue;
        mass += overlap * allowed[var][static_cast<size_t>(fb)];
        weight += overlap;
      }
      return weight > 0 ? mass / weight : 0.0;
    };
    double s = 0.0;
    size_t bins_b = static_cast<size_t>(cb.num_bins());
    for (int a = 0; a < ca.num_bins(); ++a) {
      double fa = coarse_allowed(sketch.var_a, ca, a);
      if (fa <= 0.0) continue;
      for (int b = 0; b < cb.num_bins(); ++b) {
        double fb = coarse_allowed(sketch.var_b, cb, b);
        if (fb <= 0.0) continue;
        s += sketch.joint[static_cast<size_t>(a) * bins_b +
                          static_cast<size_t>(b)] *
             fa * fb;
      }
    }
    selectivity *= std::clamp(s, 1e-9, 1.0);
    handled[sketch.var_a] = true;
    handled[sketch.var_b] = true;
  }
  for (size_t i = 0; i < v; ++i) {
    if (!handled[i]) selectivity *= marginal_selectivity[i];
  }
  return std::clamp(selectivity, 0.0, 1.0);
}

double SketchTableModel::Selectivity(const Query& query,
                                     int table_index) const {
  std::vector<std::vector<double>> allowed;
  std::vector<bool> constrained;
  ConstraintsOf(query, table_index, &allowed, &constrained);
  return GroupSelectivity(allowed);
}

std::vector<double> SketchTableModel::FilteredKeyHistogram(
    const Query& query, int table_index, const std::string& key_column,
    const KeyBuckets& buckets) const {
  size_t key_var = var_of_column_.at(key_column);
  std::vector<std::vector<double>> allowed;
  std::vector<bool> constrained;
  ConstraintsOf(query, table_index, &allowed, &constrained);
  double rows = static_cast<double>(table_->num_rows());

  std::vector<double> masses(static_cast<size_t>(buckets.num_buckets()), 0.0);
  const ColumnBinning& binning = binnings_[key_var];
  std::vector<double> saved = allowed[key_var];
  for (int bin = 0; bin < binning.num_bins(); ++bin) {
    if (saved[static_cast<size_t>(bin)] <= 0.0) continue;
    std::fill(allowed[key_var].begin(), allowed[key_var].end(), 0.0);
    allowed[key_var][static_cast<size_t>(bin)] =
        saved[static_cast<size_t>(bin)];
    double mass = GroupSelectivity(allowed) * rows;
    if (mass <= 0.0) continue;
    int64_t lo = binning.BinLow(bin), hi = binning.BinHigh(bin);
    int b_lo = buckets.BucketOf(lo), b_hi = buckets.BucketOf(hi);
    double span = static_cast<double>(hi - lo + 1);
    for (int kb = b_lo; kb <= b_hi; ++kb) {
      int64_t seg_lo = std::max(lo, buckets.BucketLow(kb));
      int64_t seg_hi = std::min(hi, buckets.BucketHigh(kb));
      if (seg_lo > seg_hi) continue;
      masses[static_cast<size_t>(kb)] +=
          mass * static_cast<double>(seg_hi - seg_lo + 1) / span;
    }
  }
  return masses;
}

}  // namespace lqo
