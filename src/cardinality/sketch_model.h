#ifndef LQO_CARDINALITY_SKETCH_MODEL_H_
#define LQO_CARDINALITY_SKETCH_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "cardinality/table_model.h"
#include "storage/table.h"

namespace lqo {

/// Iris-style summarization model [35]: the table's columns are split into
/// groups (here: greedily pairing the most correlated columns, as Iris
/// allocates its summarization budget to the column sets that need it);
/// each group gets its own summary — a 2-D histogram for a pair, a 1-D
/// histogram for a singleton — and selectivities multiply across groups.
/// Captures exactly the pairwise correlations the independence assumption
/// destroys, with a budget far below a full joint model.
class SketchTableModel : public SingleTableDistribution {
 public:
  SketchTableModel(const Table* table, int bins_1d = 64, int bins_2d = 24,
                   double correlation_threshold = 0.3);

  double Selectivity(const Query& query, int table_index) const override;
  std::vector<double> FilteredKeyHistogram(
      const Query& query, int table_index, const std::string& key_column,
      const KeyBuckets& buckets) const override;
  std::string Kind() const override { return "sketch"; }

  /// Number of 2-D (paired) groups chosen (for tests).
  size_t num_pairs() const { return pairs_.size(); }

 private:
  struct PairSketch {
    size_t var_a = 0;
    size_t var_b = 0;
    /// joint[a_bin * bins_b + b_bin] = probability mass.
    std::vector<double> joint;
  };

  /// Per-variable allowed bin fractions from the predicates (1.0 where
  /// unconstrained); `constrained[v]` says whether any predicate touched v.
  void ConstraintsOf(const Query& query, int table_index,
                     std::vector<std::vector<double>>* allowed,
                     std::vector<bool>* constrained) const;

  double GroupSelectivity(const std::vector<std::vector<double>>& allowed)
      const;

  const Table* table_;
  std::vector<std::string> column_names_;
  std::map<std::string, size_t> var_of_column_;
  std::vector<ColumnBinning> binnings_;
  /// 1-D marginals for every variable.
  std::vector<std::vector<double>> marginals_;
  std::vector<PairSketch> pairs_;
  /// Coarser binnings used by the 2-D sketches.
  std::vector<ColumnBinning> coarse_binnings_;
  /// Group id per variable: pair index, or -1 when summarized alone.
  std::vector<int> pair_of_var_;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_SKETCH_MODEL_H_
