#ifndef LQO_CARDINALITY_EVALUATION_H_
#define LQO_CARDINALITY_EVALUATION_H_

#include <vector>

#include "cardinality/training_data.h"
#include "ml/metrics.h"
#include "optimizer/cardinality_interface.h"

namespace lqo {

/// q-errors of `estimator` over labeled evaluation sub-queries.
std::vector<double> EstimatorQErrors(
    CardinalityEstimatorInterface* estimator,
    const std::vector<LabeledSubquery>& evaluation);

/// Summary convenience.
QErrorSummary EvaluateEstimator(CardinalityEstimatorInterface* estimator,
                                const std::vector<LabeledSubquery>& evaluation);

/// Splits labeled sub-queries by join size: single-table vs multi-join.
void SplitBySize(const std::vector<LabeledSubquery>& labeled,
                 std::vector<LabeledSubquery>* single_table,
                 std::vector<LabeledSubquery>* multi_join);

}  // namespace lqo

#endif  // LQO_CARDINALITY_EVALUATION_H_
