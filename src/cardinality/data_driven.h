#ifndef LQO_CARDINALITY_DATA_DRIVEN_H_
#define LQO_CARDINALITY_DATA_DRIVEN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cardinality/discretize.h"
#include "cardinality/table_model.h"
#include "optimizer/cardinality_interface.h"
#include "optimizer/table_stats.h"
#include "storage/catalog.h"

namespace lqo {

/// Per-table model families available to the data-driven estimator.
enum class TableModelKind {
  kSample, kKde, kBayesNet, kSpn, kAr, kIamAr, kSketch
};

const char* TableModelKindName(TableModelKind kind);

/// How per-table answers combine across joins:
///  - kIndependence: DeepDB-style — model selectivities multiply and each
///    join conjunct contributes 1/max(ndv) (uniform key assumption).
///  - kKeyBuckets: FactorJoin-style — per-join-group bucketed key
///    histograms are combined bucket-by-bucket, capturing join-key skew.
enum class JoinCombineMode { kIndependence, kKeyBuckets };

struct DataDrivenOptions {
  int key_buckets = 64;
  int max_bins = 40;
  size_t sample_size = 2000;
  uint64_t seed = 801;
  int ar_samples = 200;
};

/// A data-driven cardinality estimator: one SingleTableDistribution per
/// table plus a join combiner. Instantiates the data-driven rows of the
/// paper's Table 1 (KDE [14,21], Naru [71], BayesNet/BayesCard [57,65],
/// DeepDB [17], FactorJoin [64]) and, with mixed per-table kinds, GLUE [82].
class DataDrivenEstimator : public CardinalityEstimatorInterface {
 public:
  DataDrivenEstimator(std::string name, const Catalog* catalog,
                      const StatsCatalog* stats, JoinCombineMode mode,
                      DataDrivenOptions options = DataDrivenOptions());

  /// Sets the model family for every table (call before Build).
  void SetUniformModelKind(TableModelKind kind);
  /// Overrides the family for one table (GLUE-style mixing).
  void SetModelKind(const std::string& table, TableModelKind kind);

  /// Learns all per-table models from the data. Must be called once before
  /// estimating.
  void Build();

  double EstimateSubquery(const Subquery& subquery) override;
  std::string Name() const override { return name_; }

  bool built() const { return built_; }
  const SingleTableDistribution& ModelOf(const std::string& table) const;
  TableModelKind KindOf(const std::string& table) const;

 private:
  struct SchemaKeyGroup {
    KeyBuckets buckets;
    /// Member columns: table -> join column (first if several).
    std::map<std::string, std::string> column_of_table;
    /// Unfiltered per-bucket distinct key counts, per table.
    std::map<std::string, std::vector<double>> distinct_per_bucket;
  };

  std::unique_ptr<SingleTableDistribution> MakeModel(
      const std::string& table, TableModelKind kind) const;
  void BuildSchemaKeyGroups();

  std::string name_;
  const Catalog* catalog_;
  const StatsCatalog* stats_;
  JoinCombineMode mode_;
  DataDrivenOptions options_;
  std::map<std::string, TableModelKind> kind_of_table_;
  std::map<std::string, std::unique_ptr<SingleTableDistribution>> models_;
  std::vector<SchemaKeyGroup> key_groups_;
  /// "table.column" -> index into key_groups_.
  std::map<std::string, size_t> group_of_column_;
  bool built_ = false;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_DATA_DRIVEN_H_
