#ifndef LQO_CARDINALITY_KDE_MODEL_H_
#define LQO_CARDINALITY_KDE_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "cardinality/table_model.h"
#include "storage/table.h"

namespace lqo {

/// Product-Gaussian kernel density estimator over a row sample
/// (Heimel et al. [14], Kiefer et al. [21]): each sample point carries a
/// per-dimension Gaussian kernel with Scott's-rule bandwidth; a predicate
/// box's selectivity is the average kernel mass inside the box.
class KdeTableModel : public SingleTableDistribution {
 public:
  KdeTableModel(const Table* table, std::vector<size_t> sample_rows);

  double Selectivity(const Query& query, int table_index) const override;
  std::vector<double> FilteredKeyHistogram(
      const Query& query, int table_index, const std::string& key_column,
      const KeyBuckets& buckets) const override;
  std::string Kind() const override { return "kde"; }

 private:
  /// Per-sample-point kernel mass of the predicate box (vector aligned with
  /// sample points).
  std::vector<double> PointWeights(const Query& query, int table_index) const;

  const Table* table_;
  std::vector<size_t> sample_rows_;
  double scale_;
  std::map<std::string, double> bandwidth_;  // per column
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_KDE_MODEL_H_
