#ifndef LQO_CARDINALITY_TRADITIONAL_H_
#define LQO_CARDINALITY_TRADITIONAL_H_

#include <memory>
#include <string>

#include "engine/executor.h"
#include "optimizer/baseline_estimator.h"
#include "optimizer/cardinality_interface.h"
#include "storage/catalog.h"

namespace lqo {

/// Histogram + independence estimator — identical math to the native
/// optimizer's BaselineCardinalityEstimator, exposed under the taxonomy
/// name used by the benchmark tables.
class HistogramEstimator : public CardinalityEstimatorInterface {
 public:
  HistogramEstimator(const Catalog* catalog, const StatsCatalog* stats)
      : baseline_(catalog, stats) {}

  double EstimateSubquery(const Subquery& subquery) override {
    return baseline_.EstimateSubquery(subquery);
  }
  std::string Name() const override { return "histogram"; }

 private:
  BaselineCardinalityEstimator baseline_;
};

/// Uniform-sample estimator: materializes a per-table row sample at build
/// time, executes the sub-query exactly on the sampled tables and scales by
/// the sampling rates. Accurate on selections, high-variance on joins (the
/// classic failure mode the paper's Section 2.1.1 contrasts learned methods
/// against).
class SamplingEstimator : public CardinalityEstimatorInterface {
 public:
  /// Samples ceil(rate * rows) rows of each table (at least 1).
  SamplingEstimator(const Catalog* catalog, double rate, uint64_t seed = 301);

  double EstimateSubquery(const Subquery& subquery) override;
  std::string Name() const override { return "sampling"; }

 private:
  std::unique_ptr<Catalog> sampled_;
  std::unique_ptr<Executor> executor_;
  /// Scale factor per table name: full rows / sampled rows.
  std::map<std::string, double> scale_;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_TRADITIONAL_H_
