#ifndef LQO_CARDINALITY_FEATURIZER_H_
#define LQO_CARDINALITY_FEATURIZER_H_

#include <map>
#include <string>
#include <vector>

#include "optimizer/table_stats.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace lqo {

/// MSCN-style sub-query featurization [23]: fixed-size vectors with
///  - one slot per schema table (presence),
///  - one slot per schema join edge (induced presence),
///  - four slots per (table, predicate column): presence, normalized range
///    bounds, and the log histogram selectivity (the "set" features of MSCN
///    flattened into a fixed layout, which is exact for our schemas since
///    queries never repeat a table),
///  - two global slots: number of tables and log of the joined domain size.
class QueryFeaturizer {
 public:
  /// Version stamp for feature caches (ml/feature_cache.h): bump whenever
  /// the feature definition changes so cached rows from older featurizers
  /// are invalidated instead of served.
  static constexpr uint32_t kVersion = 1;

  QueryFeaturizer(const Catalog* catalog, const StatsCatalog* stats);

  size_t dim() const { return dim_; }

  std::vector<double> Featurize(const Subquery& subquery) const;

  /// As Featurize, into a caller-owned dim()-sized buffer (e.g. a
  /// FeatureMatrix row) — no per-sub-query vector allocation.
  void FeaturizeInto(const Subquery& subquery, double* out) const;

  /// Feature ranges [start, start+4) of each (table, column) predicate
  /// slot — the units Robust-MSCN-style training masks out.
  std::vector<std::pair<size_t, size_t>> PredicateSlotRanges() const;

 private:
  struct ColumnSlot {
    std::string table;
    std::string column;
  };

  const Catalog* catalog_;
  const StatsCatalog* stats_;
  std::map<std::string, size_t> table_slot_;
  std::vector<std::string> edge_keys_;  // canonical "a.c=b.d" strings
  std::vector<ColumnSlot> column_slots_;
  std::map<std::string, size_t> column_slot_index_;  // "table.column"
  size_t dim_ = 0;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_FEATURIZER_H_
