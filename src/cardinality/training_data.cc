#include "cardinality/training_data.h"

#include "common/logging.h"

namespace lqo {

std::vector<TableSet> ConnectedSubsets(const Query& query) {
  std::vector<TableSet> result;
  TableSet all = query.AllTables();
  for (TableSet s = 1; s <= all; ++s) {
    if ((s & all) != s) continue;
    if (query.IsConnected(s)) result.push_back(s);
  }
  return result;
}

CeTrainingData BuildCeTrainingData(const Catalog& catalog,
                                   const StatsCatalog& stats,
                                   const Workload& workload,
                                   TrueCardinalityService* truth) {
  LQO_CHECK(truth != nullptr);
  CeTrainingData data;
  data.catalog = &catalog;
  data.stats = &stats;
  for (const Query& query : workload.queries) {
    for (TableSet s : ConnectedSubsets(query)) {
      LabeledSubquery labeled;
      labeled.query = &query;
      labeled.tables = s;
      labeled.cardinality =
          static_cast<double>(truth->Cardinality(Subquery{&query, s}));
      data.labeled.push_back(labeled);
    }
  }
  return data;
}

}  // namespace lqo
