#include "cardinality/traditional.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace lqo {

SamplingEstimator::SamplingEstimator(const Catalog* catalog, double rate,
                                     uint64_t seed) {
  LQO_CHECK(catalog != nullptr);
  LQO_CHECK_GT(rate, 0.0);
  LQO_CHECK_LE(rate, 1.0);
  Rng rng(seed);
  sampled_ = std::make_unique<Catalog>();
  for (const std::string& name : catalog->table_names()) {
    const Table& table = **catalog->GetTable(name);
    size_t k = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(
               rate * static_cast<double>(table.num_rows()))));
    k = std::min(k, table.num_rows());
    std::vector<size_t> rows = rng.SampleWithoutReplacement(table.num_rows(), k);

    TableBuilder builder(name);
    for (const Column& col : table.columns()) {
      if (col.type == ColumnType::kCategorical) {
        builder.AddCategoricalColumn(col.name, col.dictionary);
      } else {
        builder.AddInt64Column(col.name);
      }
    }
    std::vector<int64_t> row_values(table.num_columns());
    for (size_t r : rows) {
      for (size_t c = 0; c < table.num_columns(); ++c) {
        row_values[c] = table.ValueAt(r, c);
      }
      builder.AppendRow(row_values);
    }
    scale_[name] = static_cast<double>(table.num_rows()) /
                   static_cast<double>(k);
    LQO_CHECK(sampled_->AddTable(builder.Build()).ok());
  }
  for (const JoinEdge& edge : catalog->join_edges()) {
    LQO_CHECK(sampled_->AddJoinEdge(edge).ok());
  }
  executor_ = std::make_unique<Executor>(sampled_.get());
}

double SamplingEstimator::EstimateSubquery(const Subquery& subquery) {
  const Query& query = *subquery.query;
  PhysicalPlan plan =
      MakeLeftDeepPlan(query, subquery.tables, JoinAlgorithm::kHashJoin);
  auto result = executor_->Execute(plan);
  LQO_CHECK(result.ok()) << result.status().ToString();
  double scale = 1.0;
  for (int t = 0; t < query.num_tables(); ++t) {
    if (!ContainsTable(subquery.tables, t)) continue;
    scale *= scale_.at(query.tables()[static_cast<size_t>(t)].table_name);
  }
  // Clamp to one row: an empty sampled join still admits matches in the
  // full data (the classic vanishing-sample-join failure mode).
  return std::max(1.0, static_cast<double>(result->row_count) * scale);
}

}  // namespace lqo
