#include "cardinality/spn_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/stats_util.h"
#include "common/thread_pool.h"
#include "ml/kmeans.h"

namespace lqo {
namespace {

// Child regions with fewer rows build serially inside their parent's task:
// the fit is too cheap to amortize a fan-out. The gate reads only the data,
// so the structure is identical at every thread count.
constexpr size_t kSpnParallelMinRows = 512;

}  // namespace

SpnTableModel::SpnTableModel(const Table* table, SpnOptions options)
    : table_(table), options_(options) {
  LQO_CHECK(table_ != nullptr);
  LQO_CHECK_GT(table_->num_rows(), 0u);
  const std::vector<Column>& columns = table_->columns();
  for (const Column& col : columns) {
    var_of_column_[col.name] = var_of_column_.size();
  }
  // Per-column discretization is independent; fan it out index-addressed.
  struct BinnedColumn {
    ColumnBinning binning;
    std::vector<int64_t> codes;
  };
  std::vector<BinnedColumn> discretized =
      ParallelMap(columns.size(), [&](size_t c) {
        BinnedColumn out;
        out.binning =
            ColumnBinning::BuildEquiDepth(columns[c].data, options_.max_bins);
        out.codes.resize(columns[c].data.size());
        for (size_t r = 0; r < columns[c].data.size(); ++r) {
          out.codes[r] = out.binning.BinOf(columns[c].data[r]);
        }
        return out;
      });
  for (BinnedColumn& col : discretized) {
    binnings_.push_back(std::move(col.binning));
    binned_.push_back(std::move(col.codes));
  }

  std::vector<size_t> all_rows(table_->num_rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<size_t> all_vars(binnings_.size());
  std::iota(all_vars.begin(), all_vars.end(), 0);
  Subtree tree = Build(all_rows, all_vars, 0);
  nodes_ = std::move(tree.nodes);
  root_ = tree.root;
}

SpnTableModel::Node SpnTableModel::MakeLeaf(const std::vector<size_t>& rows,
                                            size_t var) const {
  Node leaf;
  leaf.type = Node::Type::kLeaf;
  leaf.var = var;
  leaf.distribution.assign(
      static_cast<size_t>(binnings_[var].num_bins()), 0.5);  // smoothing
  for (size_t r : rows) {
    leaf.distribution[static_cast<size_t>(binned_[var][r])] += 1.0;
  }
  double total = 0.0;
  for (double c : leaf.distribution) total += c;
  for (double& c : leaf.distribution) c /= total;
  return leaf;
}

int SpnTableModel::Splice(Subtree&& sub, std::vector<Node>* nodes) {
  int offset = static_cast<int>(nodes->size());
  for (Node& node : sub.nodes) {
    for (int& child : node.children) child += offset;
    nodes->push_back(std::move(node));
  }
  return sub.root + offset;
}

SpnTableModel::Subtree SpnTableModel::Build(const std::vector<size_t>& rows,
                                            const std::vector<size_t>& vars,
                                            int depth) const {
  LQO_CHECK(!vars.empty());
  Subtree tree;
  if (vars.size() == 1) {
    tree.nodes.push_back(MakeLeaf(rows, vars[0]));
    tree.root = 0;
    return tree;
  }

  bool stop_splitting =
      rows.size() < options_.min_rows || depth >= options_.max_depth;

  // Builds the children (independent regions) in parallel when the region
  // is large enough and splices them in child order after the parent node.
  auto assemble = [&](Node parent,
                      const std::vector<std::pair<std::vector<size_t>,
                                                  std::vector<size_t>>>&
                          regions) {
    Subtree out;
    size_t parent_index = out.nodes.size();
    out.nodes.push_back(std::move(parent));
    auto build_child = [&](size_t c) {
      return Build(regions[c].first, regions[c].second, depth + 1);
    };
    std::vector<Subtree> children;
    if (rows.size() >= kSpnParallelMinRows) {
      children = ParallelMap(regions.size(), build_child);
    } else {
      children.reserve(regions.size());
      for (size_t c = 0; c < regions.size(); ++c) {
        children.push_back(build_child(c));
      }
    }
    std::vector<int> child_indices;
    for (Subtree& child : children) {
      child_indices.push_back(Splice(std::move(child), &out.nodes));
    }
    out.nodes[parent_index].children = std::move(child_indices);
    out.root = static_cast<int>(parent_index);
    return out;
  };

  if (!stop_splitting) {
    // Try a product split: connected components of the "correlated" graph.
    std::vector<std::vector<double>> values(vars.size());
    for (size_t i = 0; i < vars.size(); ++i) {
      values[i].reserve(rows.size());
      for (size_t r : rows) {
        values[i].push_back(static_cast<double>(binned_[vars[i]][r]));
      }
    }
    std::vector<int> component(vars.size(), -1);
    int num_components = 0;
    for (size_t i = 0; i < vars.size(); ++i) {
      if (component[i] >= 0) continue;
      component[i] = num_components;
      std::vector<size_t> frontier = {i};
      while (!frontier.empty()) {
        size_t u = frontier.back();
        frontier.pop_back();
        for (size_t j = 0; j < vars.size(); ++j) {
          if (component[j] >= 0) continue;
          if (std::abs(PearsonCorrelation(values[u], values[j])) >=
              options_.independence_threshold) {
            component[j] = num_components;
            frontier.push_back(j);
          }
        }
      }
      ++num_components;
    }
    if (num_components > 1) {
      Node product;
      product.type = Node::Type::kProduct;
      std::vector<std::pair<std::vector<size_t>, std::vector<size_t>>> regions;
      for (int c = 0; c < num_components; ++c) {
        std::vector<size_t> group;
        for (size_t i = 0; i < vars.size(); ++i) {
          if (component[i] == c) group.push_back(vars[i]);
        }
        regions.emplace_back(rows, std::move(group));
      }
      return assemble(std::move(product), regions);
    }

    // Sum split: k-means over normalized bin codes.
    std::vector<std::vector<double>> points(rows.size());
    for (size_t ri = 0; ri < rows.size(); ++ri) {
      points[ri].resize(vars.size());
      for (size_t i = 0; i < vars.size(); ++i) {
        double bins = static_cast<double>(binnings_[vars[i]].num_bins());
        points[ri][i] = values[i][ri] / std::max(1.0, bins - 1.0);
      }
    }
    KMeansOptions km_options;
    km_options.k = options_.sum_clusters;
    km_options.seed = options_.seed + static_cast<uint64_t>(depth);
    KMeans kmeans(km_options);
    kmeans.Fit(points);
    if (kmeans.centroids().size() > 1) {
      std::vector<std::vector<size_t>> cluster_rows(
          kmeans.centroids().size());
      for (size_t ri = 0; ri < rows.size(); ++ri) {
        cluster_rows[kmeans.labels()[ri]].push_back(rows[ri]);
      }
      std::vector<std::pair<std::vector<size_t>, std::vector<size_t>>> regions;
      std::vector<double> weights;
      for (auto& cluster : cluster_rows) {
        if (cluster.empty()) continue;
        weights.push_back(static_cast<double>(cluster.size()) /
                          static_cast<double>(rows.size()));
        regions.emplace_back(std::move(cluster), vars);
      }
      if (regions.size() > 1) {
        Node sum;
        sum.type = Node::Type::kSum;
        sum.weights = std::move(weights);
        return assemble(std::move(sum), regions);
      }
      // Degenerate clustering: fall through to the independence fallback.
    }
  }

  // Fallback: independence product of leaves.
  Node product;
  product.type = Node::Type::kProduct;
  tree.nodes.push_back(std::move(product));
  std::vector<int> children;
  for (size_t var : vars) {
    tree.nodes.push_back(MakeLeaf(rows, var));
    children.push_back(static_cast<int>(tree.nodes.size()) - 1);
  }
  tree.nodes[0].children = std::move(children);
  tree.root = 0;
  return tree;
}

double SpnTableModel::Evaluate(int node_index,
                               const BinConstraints& constraints) const {
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  switch (node.type) {
    case Node::Type::kLeaf: {
      const std::vector<double>& allowed = constraints[node.var];
      double p = 0.0;
      for (size_t b = 0; b < node.distribution.size(); ++b) {
        p += node.distribution[b] * allowed[b];
      }
      return p;
    }
    case Node::Type::kProduct: {
      double p = 1.0;
      for (int child : node.children) p *= Evaluate(child, constraints);
      return p;
    }
    case Node::Type::kSum: {
      double p = 0.0;
      for (size_t c = 0; c < node.children.size(); ++c) {
        p += node.weights[c] * Evaluate(node.children[c], constraints);
      }
      return p;
    }
  }
  return 0.0;
}

SpnTableModel::BinConstraints SpnTableModel::ConstraintsOf(
    const Query& query, int table_index) const {
  BinConstraints constraints(binnings_.size());
  for (size_t v = 0; v < binnings_.size(); ++v) {
    constraints[v].assign(static_cast<size_t>(binnings_[v].num_bins()), 1.0);
  }
  for (const Predicate& p : query.PredicatesOf(table_index)) {
    size_t v = var_of_column_.at(p.column);
    const ColumnBinning& binning = binnings_[v];
    for (int b = 0; b < binning.num_bins(); ++b) {
      double frac = 0.0;
      switch (p.kind) {
        case PredicateKind::kEquals:
          frac = binning.OverlapFraction(b, p.value, p.value);
          break;
        case PredicateKind::kRange:
          frac = binning.OverlapFraction(b, p.lo, p.hi);
          break;
        case PredicateKind::kIn:
          for (int64_t value : p.in_values) {
            frac += binning.OverlapFraction(b, value, value);
          }
          frac = std::min(frac, 1.0);
          break;
      }
      constraints[v][static_cast<size_t>(b)] *= frac;
    }
  }
  return constraints;
}

double SpnTableModel::Selectivity(const Query& query, int table_index) const {
  return std::clamp(Evaluate(root_, ConstraintsOf(query, table_index)), 0.0,
                    1.0);
}

std::vector<double> SpnTableModel::FilteredKeyHistogram(
    const Query& query, int table_index, const std::string& key_column,
    const KeyBuckets& buckets) const {
  size_t key_var = var_of_column_.at(key_column);
  BinConstraints constraints = ConstraintsOf(query, table_index);
  const ColumnBinning& binning = binnings_[key_var];
  double rows = static_cast<double>(table_->num_rows());

  std::vector<double> masses(static_cast<size_t>(buckets.num_buckets()), 0.0);
  // One evaluation per key *bin* (bins <= max_bins), spreading each bin's
  // probability over the key buckets it overlaps.
  std::vector<double> saved = constraints[key_var];
  for (int bin = 0; bin < binning.num_bins(); ++bin) {
    if (saved[static_cast<size_t>(bin)] <= 0.0) continue;
    std::fill(constraints[key_var].begin(), constraints[key_var].end(), 0.0);
    constraints[key_var][static_cast<size_t>(bin)] =
        saved[static_cast<size_t>(bin)];
    double mass = Evaluate(root_, constraints) * rows;
    if (mass <= 0.0) continue;
    int64_t lo = binning.BinLow(bin);
    int64_t hi = binning.BinHigh(bin);
    int b_lo = buckets.BucketOf(lo);
    int b_hi = buckets.BucketOf(hi);
    double span = static_cast<double>(hi - lo + 1);
    for (int kb = b_lo; kb <= b_hi; ++kb) {
      int64_t seg_lo = std::max(lo, buckets.BucketLow(kb));
      int64_t seg_hi = std::min(hi, buckets.BucketHigh(kb));
      if (seg_lo > seg_hi) continue;
      masses[static_cast<size_t>(kb)] +=
          mass * static_cast<double>(seg_hi - seg_lo + 1) / span;
    }
  }
  return masses;
}

}  // namespace lqo
