#ifndef LQO_CARDINALITY_REGISTRY_H_
#define LQO_CARDINALITY_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "cardinality/training_data.h"
#include "optimizer/cardinality_interface.h"

namespace lqo {

/// Taxonomy category of an estimator (the rows of the paper's Table 1).
enum class CeCategory {
  kTraditional,
  kQueryDrivenStatistical,
  kQueryDrivenDnn,
  kDataDriven,
  kHybrid,
};

const char* CeCategoryName(CeCategory category);

/// A constructed, trained estimator with its taxonomy metadata.
struct RegisteredEstimator {
  std::unique_ptr<CardinalityEstimatorInterface> estimator;
  CeCategory category = CeCategory::kTraditional;
  /// The surveyed systems this implementation represents, e.g.
  /// "Naru [71] / NeuroCard [70]".
  std::string represents;
  /// Wall-clock build+train time, seconds (measured at construction).
  double build_seconds = 0.0;
};

/// Which estimators to build (all true = full Table 1 sweep).
struct EstimatorSuiteOptions {
  bool traditional = true;
  bool query_driven = true;
  bool data_driven = true;
  bool hybrid = true;
  /// The expensive DNN-based member (MSCN MLP) can be skipped for quick
  /// runs.
  bool include_mlp = true;
};

/// Builds and trains the full estimator suite over one dataset + training
/// workload. The catalog/stats/training data must outlive the suite.
std::vector<RegisteredEstimator> MakeEstimatorSuite(
    const Catalog& catalog, const StatsCatalog& stats,
    const CeTrainingData& training_data,
    const EstimatorSuiteOptions& options = {});

}  // namespace lqo

#endif  // LQO_CARDINALITY_REGISTRY_H_
