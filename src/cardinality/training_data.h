#ifndef LQO_CARDINALITY_TRAINING_DATA_H_
#define LQO_CARDINALITY_TRAINING_DATA_H_

#include <vector>

#include "engine/true_cardinality.h"
#include "optimizer/table_stats.h"
#include "query/query.h"
#include "query/workload.h"
#include "storage/catalog.h"

namespace lqo {

/// A sub-query labeled with its exact cardinality.
struct LabeledSubquery {
  const Query* query = nullptr;
  TableSet tables = 0;
  double cardinality = 0.0;

  Subquery AsSubquery() const { return Subquery{query, tables}; }
};

/// Everything an estimator may use at training time. Data-driven methods
/// read `catalog` (the data); query-driven methods read `labeled` (the
/// workload with true cardinalities); hybrid methods read both.
struct CeTrainingData {
  const Catalog* catalog = nullptr;
  const StatsCatalog* stats = nullptr;
  /// All connected sub-queries of the training workload, labeled.
  std::vector<LabeledSubquery> labeled;
};

/// Enumerates all connected sub-queries (table subsets) of `query`.
std::vector<TableSet> ConnectedSubsets(const Query& query);

/// Labels every connected sub-query of every workload query with its true
/// cardinality. The workload object must outlive the returned data (the
/// labels point into it).
CeTrainingData BuildCeTrainingData(const Catalog& catalog,
                                   const StatsCatalog& stats,
                                   const Workload& workload,
                                   TrueCardinalityService* truth);

}  // namespace lqo

#endif  // LQO_CARDINALITY_TRAINING_DATA_H_
