#include "cardinality/data_driven.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <set>

#include "cardinality/ar_model.h"
#include "cardinality/bayes_net_model.h"
#include "cardinality/kde_model.h"
#include "cardinality/sample_model.h"
#include "cardinality/sketch_model.h"
#include "cardinality/spn_model.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace lqo {

const char* TableModelKindName(TableModelKind kind) {
  switch (kind) {
    case TableModelKind::kSample:
      return "sample";
    case TableModelKind::kKde:
      return "kde";
    case TableModelKind::kBayesNet:
      return "bayesnet";
    case TableModelKind::kSpn:
      return "spn";
    case TableModelKind::kAr:
      return "ar";
    case TableModelKind::kIamAr:
      return "iam_ar";
    case TableModelKind::kSketch:
      return "sketch";
  }
  return "unknown";
}

DataDrivenEstimator::DataDrivenEstimator(std::string name,
                                         const Catalog* catalog,
                                         const StatsCatalog* stats,
                                         JoinCombineMode mode,
                                         DataDrivenOptions options)
    : name_(std::move(name)),
      catalog_(catalog),
      stats_(stats),
      mode_(mode),
      options_(options) {
  LQO_CHECK(catalog_ != nullptr);
  LQO_CHECK(stats_ != nullptr);
  SetUniformModelKind(TableModelKind::kSpn);
}

void DataDrivenEstimator::SetUniformModelKind(TableModelKind kind) {
  LQO_CHECK(!built_);
  for (const std::string& table : catalog_->table_names()) {
    kind_of_table_[table] = kind;
  }
}

void DataDrivenEstimator::SetModelKind(const std::string& table,
                                       TableModelKind kind) {
  LQO_CHECK(!built_);
  LQO_CHECK(catalog_->HasTable(table));
  kind_of_table_[table] = kind;
}

std::unique_ptr<SingleTableDistribution> DataDrivenEstimator::MakeModel(
    const std::string& table, TableModelKind kind) const {
  const Table* t = *catalog_->GetTable(table);
  const TableStatistics& stats = stats_->Of(table);
  std::vector<size_t> sample = stats.sample_rows;
  switch (kind) {
    case TableModelKind::kSample:
      return std::make_unique<SampleTableModel>(t, sample);
    case TableModelKind::kKde:
      return std::make_unique<KdeTableModel>(t, sample);
    case TableModelKind::kBayesNet:
      return std::make_unique<BayesNetTableModel>(t, options_.max_bins);
    case TableModelKind::kSpn: {
      SpnOptions spn_options;
      spn_options.max_bins = options_.max_bins;
      spn_options.seed = options_.seed;
      return std::make_unique<SpnTableModel>(t, spn_options);
    }
    case TableModelKind::kAr:
      return std::make_unique<ArTableModel>(t, options_.max_bins,
                                            options_.ar_samples,
                                            options_.seed + 7);
    case TableModelKind::kIamAr:
      return std::make_unique<ArTableModel>(t, options_.max_bins,
                                            options_.ar_samples,
                                            options_.seed + 7,
                                            /*gmm_binning=*/true);
    case TableModelKind::kSketch:
      return std::make_unique<SketchTableModel>(t);
  }
  return nullptr;
}

void DataDrivenEstimator::BuildSchemaKeyGroups() {
  // Union-find over "table.column" endpoints of the schema join edges.
  std::map<std::string, std::string> parent;
  std::function<std::string(const std::string&)> find =
      [&](const std::string& x) -> std::string {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    return it->second = find(it->second);
  };
  auto unite = [&](const std::string& a, const std::string& b) {
    std::string ra = find(a), rb = find(b);
    if (ra != rb) parent[ra] = rb;
  };
  for (const JoinEdge& e : catalog_->join_edges()) {
    std::string a = e.left_table + "." + e.left_column;
    std::string b = e.right_table + "." + e.right_column;
    if (parent.find(a) == parent.end()) parent[a] = a;
    if (parent.find(b) == parent.end()) parent[b] = b;
    unite(a, b);
  }

  std::map<std::string, size_t> group_index;
  for (const auto& [column, unused] : parent) {
    std::string root = find(column);
    if (group_index.find(root) == group_index.end()) {
      group_index[root] = key_groups_.size();
      key_groups_.emplace_back();
    }
    group_of_column_[column] = group_index[root];
  }

  // Per group: members, buckets from the joint min/max, and exact distinct
  // counts per bucket.
  std::vector<int64_t> group_min(key_groups_.size(),
                                 std::numeric_limits<int64_t>::max());
  std::vector<int64_t> group_max(key_groups_.size(),
                                 std::numeric_limits<int64_t>::min());
  for (const auto& [column, group] : group_of_column_) {
    size_t dot = column.find('.');
    std::string table = column.substr(0, dot);
    std::string col = column.substr(dot + 1);
    const ColumnStats& cs = stats_->Of(table).ColumnStatsOf(col);
    group_min[group] = std::min(group_min[group], cs.min_value);
    group_max[group] = std::max(group_max[group], cs.max_value);
    // Keep the first column per table (schemas here never join two columns
    // of one table into the same group).
    key_groups_[group].column_of_table.emplace(table, col);
  }
  for (size_t g = 0; g < key_groups_.size(); ++g) {
    key_groups_[g].buckets =
        KeyBuckets(group_min[g], group_max[g], options_.key_buckets);
    for (const auto& [table, col] : key_groups_[g].column_of_table) {
      const Table& t = **catalog_->GetTable(table);
      const Column& column = t.column(t.ColumnIndex(col).value());
      std::vector<std::set<int64_t>> distinct(
          static_cast<size_t>(options_.key_buckets));
      for (int64_t v : column.data) {
        distinct[static_cast<size_t>(key_groups_[g].buckets.BucketOf(v))]
            .insert(v);
      }
      std::vector<double> counts(distinct.size());
      for (size_t b = 0; b < distinct.size(); ++b) {
        counts[b] = static_cast<double>(distinct[b].size());
      }
      key_groups_[g].distinct_per_bucket[table] = std::move(counts);
    }
  }
}

void DataDrivenEstimator::Build() {
  LQO_CHECK(!built_);
  // Per-table models are independent fits; train them as index-addressed
  // tasks and insert in table order so the map is built deterministically.
  std::vector<std::string> tables = catalog_->table_names();
  std::vector<std::unique_ptr<SingleTableDistribution>> built =
      ParallelMap(tables.size(), [&](size_t i) {
        return MakeModel(tables[i], kind_of_table_.at(tables[i]));
      });
  for (size_t i = 0; i < tables.size(); ++i) {
    models_[tables[i]] = std::move(built[i]);
  }
  BuildSchemaKeyGroups();
  built_ = true;
}

const SingleTableDistribution& DataDrivenEstimator::ModelOf(
    const std::string& table) const {
  LQO_CHECK(built_);
  return *models_.at(table);
}

TableModelKind DataDrivenEstimator::KindOf(const std::string& table) const {
  return kind_of_table_.at(table);
}

double DataDrivenEstimator::EstimateSubquery(const Subquery& subquery) {
  LQO_CHECK(built_) << name_ << " used before Build()";
  const Query& query = *subquery.query;

  // Filtered per-table cardinalities from the models.
  std::map<int, double> filtered_rows;  // query table index -> rows
  for (int t = 0; t < query.num_tables(); ++t) {
    if (!ContainsTable(subquery.tables, t)) continue;
    const std::string& table =
        query.tables()[static_cast<size_t>(t)].table_name;
    double selectivity =
        std::max(models_.at(table)->Selectivity(query, t), 1e-9);
    filtered_rows[t] =
        selectivity * static_cast<double>(stats_->Of(table).row_count);
  }

  // Union-find the induced joins into query-level key groups.
  std::vector<QueryJoin> joins = query.JoinsWithin(subquery.tables);
  if (joins.empty()) {
    LQO_CHECK_EQ(filtered_rows.size(), 1u);
    return std::max(filtered_rows.begin()->second, 1.0);
  }
  std::map<std::pair<int, std::string>, std::pair<int, std::string>> parent;
  std::function<std::pair<int, std::string>(std::pair<int, std::string>)>
      find = [&](std::pair<int, std::string> x) {
        auto it = parent.find(x);
        if (it == parent.end() || it->second == x) return x;
        return it->second = find(it->second);
      };
  for (const QueryJoin& j : joins) {
    std::pair<int, std::string> a{j.left_table, j.left_column};
    std::pair<int, std::string> b{j.right_table, j.right_column};
    if (parent.find(a) == parent.end()) parent[a] = a;
    if (parent.find(b) == parent.end()) parent[b] = b;
    auto ra = find(a), rb = find(b);
    if (ra != rb) parent[ra] = rb;
  }
  // Group members: root -> list of (table index, column).
  std::map<std::pair<int, std::string>,
           std::vector<std::pair<int, std::string>>>
      groups;
  for (const auto& [endpoint, unused] : parent) {
    groups[find(endpoint)].push_back(endpoint);
  }

  std::map<int, int> gamma;  // table index -> number of groups containing it
  double log_estimate = 0.0;

  for (const auto& [root, members] : groups) {
    // Deduplicate tables within the group.
    std::map<int, std::string> column_of_table;
    for (const auto& [t, col] : members) column_of_table.emplace(t, col);
    size_t k = column_of_table.size();
    if (k < 2) continue;
    for (const auto& [t, col] : column_of_table) ++gamma[t];

    double group_estimate = 0.0;
    if (mode_ == JoinCombineMode::kIndependence) {
      double max_ndv = 1.0;
      double product = 1.0;
      for (const auto& [t, col] : column_of_table) {
        const std::string& table =
            query.tables()[static_cast<size_t>(t)].table_name;
        max_ndv = std::max(
            max_ndv, static_cast<double>(
                         stats_->Of(table).ColumnStatsOf(col).num_distinct));
        product *= filtered_rows.at(t);
      }
      group_estimate =
          product / std::pow(max_ndv, static_cast<double>(k - 1));
    } else {
      // Key-bucket combine. All member columns share one schema group.
      const auto& [t0, col0] = *column_of_table.begin();
      const std::string& table0 =
          query.tables()[static_cast<size_t>(t0)].table_name;
      size_t schema_group = group_of_column_.at(table0 + "." + col0);
      const SchemaKeyGroup& group = key_groups_[schema_group];
      int num_buckets = group.buckets.num_buckets();

      std::vector<std::vector<double>> masses;
      std::vector<const std::vector<double>*> distincts;
      for (const auto& [t, col] : column_of_table) {
        const std::string& table =
            query.tables()[static_cast<size_t>(t)].table_name;
        masses.push_back(models_.at(table)->FilteredKeyHistogram(
            query, t, col, group.buckets));
        distincts.push_back(&group.distinct_per_bucket.at(table));
      }
      for (int b = 0; b < num_buckets; ++b) {
        double product = 1.0;
        double max_distinct = 1.0;
        for (size_t m = 0; m < masses.size(); ++m) {
          product *= std::max(masses[m][static_cast<size_t>(b)], 0.0);
          max_distinct = std::max(
              max_distinct, (*distincts[m])[static_cast<size_t>(b)]);
        }
        if (product <= 0.0) continue;
        group_estimate +=
            product / std::pow(max_distinct, static_cast<double>(k - 1));
      }
    }
    log_estimate += std::log(std::max(group_estimate, 1e-9));
  }

  for (const auto& [t, rows] : filtered_rows) {
    int g = gamma.count(t) > 0 ? gamma.at(t) : 0;
    log_estimate +=
        (1.0 - static_cast<double>(g)) * std::log(std::max(rows, 1e-9));
  }
  double estimate = std::exp(std::min(log_estimate, 60.0));
  return std::max(estimate, 1.0);
}

}  // namespace lqo
