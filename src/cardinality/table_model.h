#ifndef LQO_CARDINALITY_TABLE_MODEL_H_
#define LQO_CARDINALITY_TABLE_MODEL_H_

#include <string>
#include <vector>

#include "cardinality/discretize.h"
#include "query/query.h"

namespace lqo {

/// A learned model of one table's joint column distribution — the
/// per-table unit every data-driven estimator in Table 1 builds
/// (kernel density, Bayes net, SPN, autoregressive, sample). The estimator
/// combines per-table answers across joins (see JoinCombiner).
class SingleTableDistribution {
 public:
  virtual ~SingleTableDistribution() = default;

  /// Fraction of the table's rows satisfying the local predicates of
  /// `table_index` in `query` (in [0, 1]).
  virtual double Selectivity(const Query& query, int table_index) const = 0;

  /// Expected *absolute row counts* per key bucket among rows satisfying
  /// the local predicates, for join column `key_column`. The returned
  /// vector has `buckets.num_buckets()` entries summing to roughly
  /// Selectivity * row_count.
  virtual std::vector<double> FilteredKeyHistogram(
      const Query& query, int table_index, const std::string& key_column,
      const KeyBuckets& buckets) const = 0;

  /// Model family tag ("kde", "bayesnet", ...).
  virtual std::string Kind() const = 0;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_TABLE_MODEL_H_
