#include "cardinality/evaluation.h"

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

std::vector<double> EstimatorQErrors(
    CardinalityEstimatorInterface* estimator,
    const std::vector<LabeledSubquery>& evaluation) {
  LQO_CHECK(estimator != nullptr);
  // Workload-wide fan-out: estimators are re-entrant per the interface
  // contract (no per-call mutable state), and each q-error lands in its own
  // index slot, so the vector is identical at any thread count.
  return ParallelMap(evaluation.size(), [&](size_t i) {
    double estimate = estimator->EstimateSubquery(evaluation[i].AsSubquery());
    return QError(estimate, evaluation[i].cardinality);
  });
}

QErrorSummary EvaluateEstimator(
    CardinalityEstimatorInterface* estimator,
    const std::vector<LabeledSubquery>& evaluation) {
  return SummarizeQErrors(EstimatorQErrors(estimator, evaluation));
}

void SplitBySize(const std::vector<LabeledSubquery>& labeled,
                 std::vector<LabeledSubquery>* single_table,
                 std::vector<LabeledSubquery>* multi_join) {
  LQO_CHECK(single_table != nullptr);
  LQO_CHECK(multi_join != nullptr);
  for (const LabeledSubquery& sub : labeled) {
    if (PopCount(sub.tables) == 1) {
      single_table->push_back(sub);
    } else {
      multi_join->push_back(sub);
    }
  }
}

}  // namespace lqo
