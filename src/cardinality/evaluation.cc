#include "cardinality/evaluation.h"

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

std::vector<double> EstimatorQErrors(
    CardinalityEstimatorInterface* estimator,
    const std::vector<LabeledSubquery>& evaluation) {
  LQO_CHECK(estimator != nullptr);
  // Workload-wide batch: learned estimators featurize the whole workload
  // into one matrix and run a single batched model pass; the default
  // implementation fans the re-entrant scalar path out over the pool.
  // Either way estimates land in index-addressed slots, so the vector is
  // identical at any thread count.
  std::vector<Subquery> subqueries;
  subqueries.reserve(evaluation.size());
  for (const LabeledSubquery& labeled : evaluation) {
    subqueries.push_back(labeled.AsSubquery());
  }
  std::vector<double> estimates = estimator->EstimateSubqueryBatch(subqueries);
  LQO_CHECK_EQ(estimates.size(), evaluation.size());
  std::vector<double> qerrors(evaluation.size());
  for (size_t i = 0; i < evaluation.size(); ++i) {
    qerrors[i] = QError(estimates[i], evaluation[i].cardinality);
  }
  return qerrors;
}

QErrorSummary EvaluateEstimator(
    CardinalityEstimatorInterface* estimator,
    const std::vector<LabeledSubquery>& evaluation) {
  return SummarizeQErrors(EstimatorQErrors(estimator, evaluation));
}

void SplitBySize(const std::vector<LabeledSubquery>& labeled,
                 std::vector<LabeledSubquery>* single_table,
                 std::vector<LabeledSubquery>* multi_join) {
  LQO_CHECK(single_table != nullptr);
  LQO_CHECK(multi_join != nullptr);
  for (const LabeledSubquery& sub : labeled) {
    if (PopCount(sub.tables) == 1) {
      single_table->push_back(sub);
    } else {
      multi_join->push_back(sub);
    }
  }
}

}  // namespace lqo
