#include "cardinality/evaluation.h"

#include "common/logging.h"

namespace lqo {

std::vector<double> EstimatorQErrors(
    CardinalityEstimatorInterface* estimator,
    const std::vector<LabeledSubquery>& evaluation) {
  LQO_CHECK(estimator != nullptr);
  std::vector<double> qerrors;
  qerrors.reserve(evaluation.size());
  for (const LabeledSubquery& labeled : evaluation) {
    double estimate = estimator->EstimateSubquery(labeled.AsSubquery());
    qerrors.push_back(QError(estimate, labeled.cardinality));
  }
  return qerrors;
}

QErrorSummary EvaluateEstimator(
    CardinalityEstimatorInterface* estimator,
    const std::vector<LabeledSubquery>& evaluation) {
  return SummarizeQErrors(EstimatorQErrors(estimator, evaluation));
}

void SplitBySize(const std::vector<LabeledSubquery>& labeled,
                 std::vector<LabeledSubquery>* single_table,
                 std::vector<LabeledSubquery>* multi_join) {
  LQO_CHECK(single_table != nullptr);
  LQO_CHECK(multi_join != nullptr);
  for (const LabeledSubquery& sub : labeled) {
    if (PopCount(sub.tables) == 1) {
      single_table->push_back(sub);
    } else {
      multi_join->push_back(sub);
    }
  }
}

}  // namespace lqo
