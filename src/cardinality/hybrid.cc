#include "cardinality/hybrid.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/stats_util.h"
#include "common/thread_pool.h"
#include "ml/metrics.h"

namespace lqo {

UaeEstimator::UaeEstimator(const Catalog* catalog, const StatsCatalog* stats)
    : data_model_("uae_data", catalog, stats, JoinCombineMode::kKeyBuckets),
      featurizer_(catalog, stats) {
  data_model_.SetUniformModelKind(TableModelKind::kAr);
}

void UaeEstimator::Train(const CeTrainingData& data) {
  if (!data_model_.built()) data_model_.Build();
  LQO_CHECK(!data.labeled.empty()) << "UAE training needs a workload";
  std::vector<std::vector<double>> x;
  std::vector<double> residuals;
  for (const LabeledSubquery& labeled : data.labeled) {
    Subquery subquery = labeled.AsSubquery();
    double data_estimate = data_model_.EstimateSubquery(subquery);
    x.push_back(featurizer_.Featurize(subquery));
    residuals.push_back(std::log(std::max(labeled.cardinality, 1.0)) -
                        std::log(std::max(data_estimate, 1.0)));
  }
  GbdtOptions options;
  options.num_trees = 80;
  options.tree.max_depth = 3;
  corrector_ = GradientBoostedTrees(options);
  corrector_.Fit(x, residuals);
  trained_ = true;
}

double UaeEstimator::DataOnlyEstimate(const Subquery& subquery) {
  LQO_CHECK(data_model_.built());
  return data_model_.EstimateSubquery(subquery);
}

double UaeEstimator::EstimateSubquery(const Subquery& subquery) {
  LQO_CHECK(trained_) << "uae_hybrid used before Train()";
  double data_estimate = data_model_.EstimateSubquery(subquery);
  double correction = corrector_.Predict(featurizer_.Featurize(subquery));
  correction = std::clamp(correction, -20.0, 20.0);
  return std::max(1.0, data_estimate * std::exp(correction));
}

std::vector<double> UaeEstimator::EstimateSubqueryBatch(
    const std::vector<Subquery>& subqueries) {
  LQO_CHECK(trained_) << "uae_hybrid used before Train()";
  if (subqueries.empty()) return {};
  // Data-model estimates and featurization are both per-row and
  // re-entrant, so they share one index-addressed parallel sweep; the
  // corrector then scores the whole matrix in one batched pass. Uses
  // member scratch: one batch call at a time (concurrent callers use the
  // scalar EstimateSubquery).
  batch_scratch_.Reset(featurizer_.dim());
  batch_scratch_.Reserve(subqueries.size());
  for (size_t i = 0; i < subqueries.size(); ++i) batch_scratch_.AppendRow();
  std::vector<double> data_estimates(subqueries.size());
  ParallelFor(subqueries.size(), [&](size_t i) {
    data_estimates[i] = data_model_.EstimateSubquery(subqueries[i]);
    featurizer_.FeaturizeInto(subqueries[i], batch_scratch_.MutableRow(i));
  });
  std::vector<double> corrections(subqueries.size());
  corrector_.PredictBatch(batch_scratch_, corrections);
  std::vector<double> estimates(subqueries.size());
  for (size_t i = 0; i < subqueries.size(); ++i) {
    double correction = std::clamp(corrections[i], -20.0, 20.0);
    estimates[i] = std::max(1.0, data_estimates[i] * std::exp(correction));
  }
  return estimates;
}

std::unique_ptr<DataDrivenEstimator> MakeGlueEstimator(
    const Catalog* catalog, const StatsCatalog* stats,
    const CeTrainingData& data) {
  // Candidate per-table families.
  const TableModelKind kCandidates[] = {TableModelKind::kSpn,
                                        TableModelKind::kBayesNet,
                                        TableModelKind::kKde};

  // Validate each family on single-table labeled sub-queries, per table.
  std::map<std::string, TableModelKind> best_kind;
  std::map<std::string, double> best_score;
  for (TableModelKind kind : kCandidates) {
    DataDrivenEstimator candidate("glue_probe", catalog, stats,
                                  JoinCombineMode::kIndependence);
    candidate.SetUniformModelKind(kind);
    candidate.Build();
    std::map<std::string, std::vector<double>> qerrors;
    for (const LabeledSubquery& labeled : data.labeled) {
      if (PopCount(labeled.tables) != 1) continue;
      int t = __builtin_ctzll(labeled.tables);
      const std::string& table =
          labeled.query->tables()[static_cast<size_t>(t)].table_name;
      double estimate = candidate.EstimateSubquery(labeled.AsSubquery());
      qerrors[table].push_back(QError(estimate, labeled.cardinality));
    }
    for (const auto& [table, errors] : qerrors) {
      double score = GeometricMean(errors);
      auto it = best_score.find(table);
      if (it == best_score.end() || score < it->second) {
        best_score[table] = score;
        best_kind[table] = kind;
      }
    }
  }

  auto glue = std::make_unique<DataDrivenEstimator>(
      "glue", catalog, stats, JoinCombineMode::kKeyBuckets);
  // Default family for tables never touched by the training workload.
  glue->SetUniformModelKind(TableModelKind::kSpn);
  for (const auto& [table, kind] : best_kind) {
    glue->SetModelKind(table, kind);
  }
  glue->Build();
  return glue;
}

}  // namespace lqo
