#ifndef LQO_CARDINALITY_DISCRETIZE_H_
#define LQO_CARDINALITY_DISCRETIZE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lqo {

/// Discretization of one column into contiguous value bins, used by the
/// data-driven models (Bayes net CPTs, autoregressive chain, SPN leaves).
/// Bins are equi-depth over the observed data; columns with few distinct
/// values get one bin per value.
class ColumnBinning {
 public:
  ColumnBinning() = default;

  /// Builds bins from the raw column values.
  static ColumnBinning BuildEquiDepth(const std::vector<int64_t>& values,
                                      int max_bins);

  /// Builds bins from explicit interior cut points: bin i spans
  /// [cut_{i-1}+1, cut_i] with the first starting at `min_value` and the
  /// last ending at `max_value`. Cuts outside (min,max) are dropped.
  static ColumnBinning FromCutPoints(std::vector<int64_t> cuts,
                                     int64_t min_value, int64_t max_value);

  int num_bins() const { return static_cast<int>(lows_.size()); }

  /// Bin containing v; values outside the observed domain clamp to the
  /// first/last bin.
  int BinOf(int64_t v) const;

  int64_t BinLow(int bin) const { return lows_[static_cast<size_t>(bin)]; }
  int64_t BinHigh(int bin) const { return highs_[static_cast<size_t>(bin)]; }

  /// Fraction of bin `bin` overlapped by [lo, hi], assuming values are
  /// uniform over the bin's integer span.
  double OverlapFraction(int bin, int64_t lo, int64_t hi) const;

 private:
  std::vector<int64_t> lows_;   // inclusive
  std::vector<int64_t> highs_;  // inclusive
};

/// Equi-width bucketing of a join-key domain, shared across all tables
/// whose columns participate in the same join group (FactorJoin-style).
class KeyBuckets {
 public:
  KeyBuckets() = default;
  KeyBuckets(int64_t min_value, int64_t max_value, int num_buckets);

  int num_buckets() const { return num_buckets_; }
  int BucketOf(int64_t v) const;

  /// Inclusive value range of bucket b (BucketLow(0) == domain min).
  int64_t BucketLow(int b) const;
  int64_t BucketHigh(int b) const;

 private:
  int64_t min_value_ = 0;
  int64_t max_value_ = 0;
  int num_buckets_ = 1;
  double width_ = 1.0;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_DISCRETIZE_H_
