#include "cardinality/query_driven.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "query/workload.h"

namespace lqo {

QueryDrivenEstimator::QueryDrivenEstimator(ModelType type,
                                           const Catalog* catalog,
                                           const StatsCatalog* stats,
                                           QueryDrivenOptions options)
    : type_(type),
      options_(options),
      featurizer_(catalog, stats),
      train_cache_(featurizer_.dim()) {
  MlpOptions mlp_options;
  mlp_options.hidden_layers = {128, 64};
  mlp_options.epochs = 60;
  mlp_options.seed = 41;
  mlp_ = Mlp(mlp_options);
}

void QueryDrivenEstimator::Train(const CeTrainingData& data) {
  LQO_CHECK(!data.labeled.empty()) << "query-driven training needs a workload";
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  x.reserve(data.labeled.size());
  for (const LabeledSubquery& labeled : data.labeled) {
    // Served from the train-time cache when this labeled sub-query was
    // already featurized in an earlier retrain epoch (bit-identical rows
    // either way — the featurizer is pure for this catalog/stats snapshot).
    Subquery subquery = labeled.AsSubquery();
    uint64_t key = subquery.KeyHash();
    std::vector<double> features(featurizer_.dim());
    if (!train_cache_.Lookup(key, QueryFeaturizer::kVersion,
                             features.data())) {
      featurizer_.FeaturizeInto(subquery, features.data());
      train_cache_.Insert(key, QueryFeaturizer::kVersion, features.data());
    }
    x.push_back(std::move(features));
    y.push_back(std::log(std::max(labeled.cardinality, 1.0)));
  }
  if (options_.mask_training) {
    // Robust-MSCN augmentation [45]: masked copies replace a predicate's
    // value features with a sentinel "present but unknown" token (distinct
    // from "no predicate"), teaching the model a calibrated fallback for
    // out-of-distribution predicates at serving time.
    Rng rng(options_.seed);
    std::vector<std::pair<size_t, size_t>> slots =
        featurizer_.PredicateSlotRanges();
    size_t original = x.size();
    for (size_t i = 0; i < original; ++i) {
      std::vector<double> masked = x[i];
      bool changed = false;
      for (const auto& [start, len] : slots) {
        (void)len;
        if (masked[start] == 0.0) continue;  // slot not populated.
        if (!rng.Bernoulli(options_.mask_probability)) continue;
        MaskSlot(&masked, start);
        changed = true;
      }
      if (changed) {
        x.push_back(std::move(masked));
        y.push_back(y[i]);
      }
    }
  }
  switch (type_) {
    case ModelType::kLinear:
      LQO_CHECK(linear_.Fit(x, y).ok());
      break;
    case ModelType::kGbdt:
      gbdt_.Fit(x, y);
      break;
    case ModelType::kMlp:
      mlp_.Fit(x, y);
      break;
    case ModelType::kForest:
      forest_.Fit(x, y);
      break;
  }
  trained_ = true;
}

void QueryDrivenEstimator::MaskSlot(std::vector<double>* features,
                                    size_t start) {
  // Sentinel token: predicate present, full range, +1 in the log-sel slot
  // (a value no real predicate produces, since log selectivity <= 0).
  (*features)[start] = 1.0;
  (*features)[start + 1] = 0.0;
  (*features)[start + 2] = 1.0;
  (*features)[start + 3] = 1.0;
}

double QueryDrivenEstimator::EstimateSubquery(const Subquery& subquery) {
  return EstimateInternal(subquery, /*mask_predicates=*/false);
}

double QueryDrivenEstimator::EstimateMasked(const Subquery& subquery) {
  return EstimateInternal(subquery, /*mask_predicates=*/true);
}

double QueryDrivenEstimator::EstimateInternal(const Subquery& subquery,
                                              bool mask_predicates) {
  LQO_CHECK(trained_) << Name() << " used before Train()";
  std::vector<double> features = featurizer_.Featurize(subquery);
  if (mask_predicates) {
    for (const auto& [start, len] : featurizer_.PredicateSlotRanges()) {
      (void)len;
      if (features[start] != 0.0) MaskSlot(&features, start);
    }
  }
  double log_card = 0.0;
  switch (type_) {
    case ModelType::kLinear:
      log_card = linear_.Predict(features);
      break;
    case ModelType::kGbdt:
      log_card = gbdt_.Predict(features);
      break;
    case ModelType::kMlp:
      log_card = mlp_.Predict(features);
      break;
    case ModelType::kForest:
      log_card = forest_.Predict(features);
      break;
  }
  // Guard against wild extrapolation in log space.
  log_card = std::clamp(log_card, 0.0, 60.0);
  return std::exp(log_card);
}

std::vector<double> QueryDrivenEstimator::EstimateSubqueryBatch(
    const std::vector<Subquery>& subqueries) {
  LQO_CHECK(trained_) << Name() << " used before Train()";
  if (subqueries.empty()) return {};
  // Featurize the whole batch into one reusable matrix (parallel,
  // index-addressed rows), run one batched model pass, then apply the
  // scalar path's clamp/exp per row. Uses member scratch: one batch call
  // at a time (the concurrent frozen-provider path uses the scalar
  // EstimateSubquery, which stays re-entrant).
  batch_scratch_.Reset(featurizer_.dim());
  batch_scratch_.Reserve(subqueries.size());
  for (size_t i = 0; i < subqueries.size(); ++i) batch_scratch_.AppendRow();
  ParallelFor(subqueries.size(), [&](size_t i) {
    featurizer_.FeaturizeInto(subqueries[i], batch_scratch_.MutableRow(i));
  });
  std::vector<double> estimates(subqueries.size());
  switch (type_) {
    case ModelType::kLinear:
      linear_.PredictBatch(batch_scratch_, estimates);
      break;
    case ModelType::kGbdt:
      gbdt_.PredictBatch(batch_scratch_, estimates);
      break;
    case ModelType::kMlp:
      mlp_.PredictBatch(batch_scratch_, estimates);
      break;
    case ModelType::kForest:
      forest_.PredictBatch(batch_scratch_, estimates);
      break;
  }
  for (double& e : estimates) e = std::exp(std::clamp(e, 0.0, 60.0));
  return estimates;
}

InferenceStatsSnapshot QueryDrivenEstimator::InferenceStats() const {
  switch (type_) {
    case ModelType::kLinear:
      return linear_.Stats();
    case ModelType::kGbdt:
      return gbdt_.Stats();
    case ModelType::kMlp:
      return mlp_.Stats();
    case ModelType::kForest:
      return forest_.Stats();
  }
  return {};
}

double QueryDrivenEstimator::EstimateWithInterval(const Subquery& subquery,
                                                  double z, double* lo,
                                                  double* hi) {
  LQO_CHECK(trained_);
  LQO_CHECK(type_ == ModelType::kForest)
      << "prediction intervals need the forest ensemble";
  LQO_CHECK(lo != nullptr);
  LQO_CHECK(hi != nullptr);
  std::vector<double> features = featurizer_.Featurize(subquery);
  double mean, stddev;
  forest_.PredictWithUncertainty(features, &mean, &stddev);
  mean = std::clamp(mean, 0.0, 60.0);
  *lo = std::exp(std::max(0.0, mean - z * stddev));
  *hi = std::exp(std::min(60.0, mean + z * stddev));
  return std::exp(mean);
}

std::string QueryDrivenEstimator::Name() const {
  std::string suffix = options_.mask_training ? "_robust" : "";
  switch (type_) {
    case ModelType::kLinear:
      return "linear_qd" + suffix;
    case ModelType::kGbdt:
      return "gbdt_qd" + suffix;
    case ModelType::kMlp:
      return options_.mask_training ? "robust_mscn" : "mscn_mlp";
    case ModelType::kForest:
      return "forest_qd" + suffix;
  }
  return "query_driven";
}

// ---------------------------------------------------------------------------
// QuickSel
// ---------------------------------------------------------------------------

double QuickSelEstimator::Box::Volume() const {
  double v = 1.0;
  for (size_t d = 0; d < lo.size(); ++d) v *= std::max(0.0, hi[d] - lo[d]);
  return v;
}

double QuickSelEstimator::Box::OverlapVolume(const Box& other) const {
  double v = 1.0;
  for (size_t d = 0; d < lo.size(); ++d) {
    double o = std::min(hi[d], other.hi[d]) - std::max(lo[d], other.lo[d]);
    if (o <= 0.0) return 0.0;
    v *= o;
  }
  return v;
}

QuickSelEstimator::QuickSelEstimator(const Catalog* catalog,
                                     const StatsCatalog* stats,
                                     size_t max_kernels)
    : catalog_(catalog), stats_(stats), max_kernels_(max_kernels) {}

QuickSelEstimator::Box QuickSelEstimator::BoxOf(
    const Query& query, int table_index, const TableMixture& mixture) const {
  const std::string& table =
      query.tables()[static_cast<size_t>(table_index)].table_name;
  Box box;
  box.lo.assign(mixture.columns.size(), 0.0);
  box.hi.assign(mixture.columns.size(), 1.0);
  for (const Predicate& p : query.PredicatesOf(table_index)) {
    auto it = std::find(mixture.columns.begin(), mixture.columns.end(),
                        p.column);
    if (it == mixture.columns.end()) continue;
    size_t d = static_cast<size_t>(it - mixture.columns.begin());
    const ColumnStats& cs = stats_->Of(table).ColumnStatsOf(p.column);
    // Integer semantics: value v covers [v, v+1) before normalizing, so
    // equality boxes have positive width.
    double span = static_cast<double>(cs.max_value - cs.min_value + 1);
    int64_t lo = 0, hi = 0;
    switch (p.kind) {
      case PredicateKind::kEquals:
        lo = p.value;
        hi = p.value;
        break;
      case PredicateKind::kRange:
        lo = p.lo;
        hi = p.hi;
        break;
      case PredicateKind::kIn:
        lo = p.in_values.front();
        hi = p.in_values.back();
        break;
    }
    double lo_norm = std::clamp(
        static_cast<double>(lo - cs.min_value) / span, 0.0, 1.0);
    double hi_norm = std::clamp(
        static_cast<double>(hi - cs.min_value + 1) / span, 0.0, 1.0);
    box.lo[d] = std::max(box.lo[d], lo_norm);
    box.hi[d] = std::min(box.hi[d], hi_norm);
  }
  return box;
}

void QuickSelEstimator::Train(const CeTrainingData& data) {
  mixtures_.clear();
  // Initialize mixtures (columns layout) for every table.
  for (const std::string& table : catalog_->table_names()) {
    TableMixture mixture;
    mixture.columns = PredicateColumns(*catalog_, table);
    mixtures_[table] = std::move(mixture);
  }

  // Gather per-table observations from single-table labeled sub-queries.
  std::map<std::string, std::vector<std::pair<Box, double>>> observations;
  for (const LabeledSubquery& labeled : data.labeled) {
    if (PopCount(labeled.tables) != 1) continue;
    int t = __builtin_ctzll(labeled.tables);
    const std::string& table =
        labeled.query->tables()[static_cast<size_t>(t)].table_name;
    const TableMixture& mixture = mixtures_.at(table);
    if (mixture.columns.empty()) continue;
    Box box = BoxOf(*labeled.query, t, mixture);
    double selectivity =
        labeled.cardinality /
        std::max(1.0, static_cast<double>(stats_->Of(table).row_count));
    observations[table].emplace_back(std::move(box), selectivity);
  }

  for (auto& [table, obs] : observations) {
    TableMixture& mixture = mixtures_[table];
    if (obs.empty()) continue;
    // Prior observation: the full box has selectivity 1.
    Box full;
    full.lo.assign(mixture.columns.size(), 0.0);
    full.hi.assign(mixture.columns.size(), 1.0);
    obs.emplace_back(full, 1.0);

    // Kernels = (subsampled) observed boxes with positive volume.
    for (const auto& [box, sel] : obs) {
      if (mixture.kernels.size() >= max_kernels_) break;
      if (box.Volume() <= 0.0) continue;
      mixture.kernels.push_back(box);
    }
    if (mixture.kernels.empty()) continue;

    // Least squares: (F^T F + lambda I) w = F^T s, where
    // F[j][i] = |k_i ∩ b_j| / |k_i|.
    size_t k = mixture.kernels.size();
    std::vector<std::vector<double>> gram(k, std::vector<double>(k, 0.0));
    std::vector<double> rhs(k, 0.0);
    for (const auto& [box, sel] : obs) {
      std::vector<double> f(k);
      for (size_t i = 0; i < k; ++i) {
        f[i] = mixture.kernels[i].OverlapVolume(box) /
               mixture.kernels[i].Volume();
      }
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = i; j < k; ++j) gram[i][j] += f[i] * f[j];
        rhs[i] += f[i] * sel;
      }
    }
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < i; ++j) gram[i][j] = gram[j][i];
      gram[i][i] += 1e-4;
    }
    std::vector<double> weights;
    if (CholeskySolve(std::move(gram), std::move(rhs), &weights)) {
      mixture.weights = std::move(weights);
    } else {
      mixture.kernels.clear();  // fall back to histogram for this table.
    }
  }
  trained_ = true;
}

double QuickSelEstimator::TableSelectivity(const Query& query,
                                           int table_index) const {
  const std::string& table =
      query.tables()[static_cast<size_t>(table_index)].table_name;
  auto it = mixtures_.find(table);
  if (it == mixtures_.end() || it->second.kernels.empty()) {
    // Histogram fallback (also used before training converges).
    double selectivity = 1.0;
    const TableStatistics& stats = stats_->Of(table);
    for (const Predicate& p : query.PredicatesOf(table_index)) {
      selectivity *= stats.ColumnStatsOf(p.column).Selectivity(p);
    }
    return selectivity;
  }
  const TableMixture& mixture = it->second;
  Box box = BoxOf(query, table_index, mixture);
  double selectivity = 0.0;
  for (size_t i = 0; i < mixture.kernels.size(); ++i) {
    selectivity += mixture.weights[i] *
                   mixture.kernels[i].OverlapVolume(box) /
                   mixture.kernels[i].Volume();
  }
  return std::clamp(selectivity, 1e-9, 1.0);
}

double QuickSelEstimator::EstimateSubquery(const Subquery& subquery) {
  const Query& query = *subquery.query;
  double card = 1.0;
  for (int t = 0; t < query.num_tables(); ++t) {
    if (!ContainsTable(subquery.tables, t)) continue;
    const std::string& table =
        query.tables()[static_cast<size_t>(t)].table_name;
    card *= static_cast<double>(stats_->Of(table).row_count) *
            TableSelectivity(query, t);
  }
  for (const QueryJoin& join : query.JoinsWithin(subquery.tables)) {
    const std::string& left =
        query.tables()[static_cast<size_t>(join.left_table)].table_name;
    const std::string& right =
        query.tables()[static_cast<size_t>(join.right_table)].table_name;
    double ndv_left = static_cast<double>(
        stats_->Of(left).ColumnStatsOf(join.left_column).num_distinct);
    double ndv_right = static_cast<double>(
        stats_->Of(right).ColumnStatsOf(join.right_column).num_distinct);
    card /= std::max({ndv_left, ndv_right, 1.0});
  }
  return std::max(card, 1.0);
}

}  // namespace lqo
