#ifndef LQO_CARDINALITY_SAMPLE_MODEL_H_
#define LQO_CARDINALITY_SAMPLE_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "cardinality/table_model.h"
#include "storage/table.h"

namespace lqo {

/// Exact evaluation over a uniform row sample — FactorJoin's single-table
/// building block [64]: cheap, unbiased per table, combined across joins
/// with key-bucket histograms.
class SampleTableModel : public SingleTableDistribution {
 public:
  /// `sample_rows` are row indices into `table` (uniform sample).
  SampleTableModel(const Table* table, std::vector<size_t> sample_rows);

  double Selectivity(const Query& query, int table_index) const override;
  std::vector<double> FilteredKeyHistogram(
      const Query& query, int table_index, const std::string& key_column,
      const KeyBuckets& buckets) const override;
  std::string Kind() const override { return "sample"; }

 private:
  /// Rows of the sample that satisfy the predicates.
  std::vector<size_t> MatchingRows(const Query& query, int table_index) const;

  const Table* table_;
  std::vector<size_t> sample_rows_;
  double scale_;  // full rows / sample rows
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_SAMPLE_MODEL_H_
