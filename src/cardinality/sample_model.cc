#include "cardinality/sample_model.h"

#include "common/logging.h"

namespace lqo {

SampleTableModel::SampleTableModel(const Table* table,
                                   std::vector<size_t> sample_rows)
    : table_(table), sample_rows_(std::move(sample_rows)) {
  LQO_CHECK(table_ != nullptr);
  LQO_CHECK(!sample_rows_.empty());
  scale_ = static_cast<double>(table_->num_rows()) /
           static_cast<double>(sample_rows_.size());
}

std::vector<size_t> SampleTableModel::MatchingRows(const Query& query,
                                                   int table_index) const {
  std::vector<Predicate> predicates = query.PredicatesOf(table_index);
  std::vector<const Column*> cols;
  for (const Predicate& p : predicates) {
    cols.push_back(&table_->column(table_->ColumnIndex(p.column).value()));
  }
  std::vector<size_t> matching;
  for (size_t r : sample_rows_) {
    bool pass = true;
    for (size_t p = 0; p < predicates.size(); ++p) {
      if (!predicates[p].Matches(cols[p]->data[r])) {
        pass = false;
        break;
      }
    }
    if (pass) matching.push_back(r);
  }
  return matching;
}

double SampleTableModel::Selectivity(const Query& query,
                                     int table_index) const {
  return static_cast<double>(MatchingRows(query, table_index).size()) /
         static_cast<double>(sample_rows_.size());
}

std::vector<double> SampleTableModel::FilteredKeyHistogram(
    const Query& query, int table_index, const std::string& key_column,
    const KeyBuckets& buckets) const {
  const Column& key =
      table_->column(table_->ColumnIndex(key_column).value());
  std::vector<double> masses(static_cast<size_t>(buckets.num_buckets()), 0.0);
  for (size_t r : MatchingRows(query, table_index)) {
    masses[static_cast<size_t>(buckets.BucketOf(key.data[r]))] += scale_;
  }
  return masses;
}

}  // namespace lqo
