#include "cardinality/kde_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats_util.h"

namespace lqo {
namespace {

// Standard normal CDF.
double Phi(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

// Gaussian kernel mass of [lo, hi] around center with bandwidth h (integer
// semantics widen the interval by half a unit on each side).
double IntervalMass(double center, double h, double lo, double hi) {
  return Phi((hi + 0.5 - center) / h) - Phi((lo - 0.5 - center) / h);
}

}  // namespace

KdeTableModel::KdeTableModel(const Table* table,
                             std::vector<size_t> sample_rows)
    : table_(table), sample_rows_(std::move(sample_rows)) {
  LQO_CHECK(table_ != nullptr);
  LQO_CHECK(!sample_rows_.empty());
  scale_ = static_cast<double>(table_->num_rows()) /
           static_cast<double>(sample_rows_.size());
  // Scott's rule per column: h = sigma * n^(-1/(d+4)) with d=1 per-dim.
  double n = static_cast<double>(sample_rows_.size());
  for (const Column& col : table_->columns()) {
    std::vector<double> values;
    values.reserve(sample_rows_.size());
    for (size_t r : sample_rows_) {
      values.push_back(static_cast<double>(col.data[r]));
    }
    double sigma = StdDev(values);
    double h = std::max(0.5, sigma * std::pow(n, -0.2));
    bandwidth_[col.name] = h;
  }
}

std::vector<double> KdeTableModel::PointWeights(const Query& query,
                                                int table_index) const {
  std::vector<Predicate> predicates = query.PredicatesOf(table_index);
  std::vector<double> weights(sample_rows_.size(), 1.0);
  for (const Predicate& p : predicates) {
    const Column& col =
        table_->column(table_->ColumnIndex(p.column).value());
    double h = bandwidth_.at(p.column);
    for (size_t i = 0; i < sample_rows_.size(); ++i) {
      double center = static_cast<double>(col.data[sample_rows_[i]]);
      double mass = 0.0;
      switch (p.kind) {
        case PredicateKind::kEquals:
          mass = IntervalMass(center, h, static_cast<double>(p.value),
                              static_cast<double>(p.value));
          break;
        case PredicateKind::kRange:
          mass = IntervalMass(center, h, static_cast<double>(p.lo),
                              static_cast<double>(p.hi));
          break;
        case PredicateKind::kIn:
          for (int64_t v : p.in_values) {
            mass += IntervalMass(center, h, static_cast<double>(v),
                                 static_cast<double>(v));
          }
          break;
      }
      weights[i] *= std::clamp(mass, 0.0, 1.0);
    }
  }
  return weights;
}

double KdeTableModel::Selectivity(const Query& query, int table_index) const {
  std::vector<double> weights = PointWeights(query, table_index);
  double total = 0.0;
  for (double w : weights) total += w;
  return total / static_cast<double>(weights.size());
}

std::vector<double> KdeTableModel::FilteredKeyHistogram(
    const Query& query, int table_index, const std::string& key_column,
    const KeyBuckets& buckets) const {
  std::vector<double> weights = PointWeights(query, table_index);
  const Column& key =
      table_->column(table_->ColumnIndex(key_column).value());
  std::vector<double> masses(static_cast<size_t>(buckets.num_buckets()), 0.0);
  for (size_t i = 0; i < sample_rows_.size(); ++i) {
    masses[static_cast<size_t>(buckets.BucketOf(key.data[sample_rows_[i]]))] +=
        weights[i] * scale_;
  }
  return masses;
}

}  // namespace lqo
