#include "cardinality/discretize.h"

#include <algorithm>

#include "common/logging.h"

namespace lqo {

ColumnBinning ColumnBinning::BuildEquiDepth(const std::vector<int64_t>& values,
                                            int max_bins) {
  LQO_CHECK(!values.empty());
  LQO_CHECK_GT(max_bins, 0);
  std::vector<int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int64_t> distinct = sorted;
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  ColumnBinning binning;
  if (static_cast<int>(distinct.size()) <= max_bins) {
    // One bin per distinct value.
    for (int64_t v : distinct) {
      binning.lows_.push_back(v);
      binning.highs_.push_back(v);
    }
    return binning;
  }

  // Equi-depth cuts over the sorted multiset; merge cuts landing on the
  // same value.
  size_t n = sorted.size();
  int64_t prev_high = sorted[0] - 1;
  for (int b = 0; b < max_bins; ++b) {
    size_t hi_idx = (static_cast<size_t>(b) + 1) * (n - 1) /
                    static_cast<size_t>(max_bins);
    int64_t hi = sorted[hi_idx];
    if (b == max_bins - 1) hi = sorted[n - 1];
    if (hi <= prev_high) continue;  // empty bucket after merge.
    binning.lows_.push_back(prev_high + 1);
    binning.highs_.push_back(hi);
    prev_high = hi;
  }
  // First bin must start at the minimum.
  binning.lows_.front() = sorted.front();
  return binning;
}

ColumnBinning ColumnBinning::FromCutPoints(std::vector<int64_t> cuts,
                                           int64_t min_value,
                                           int64_t max_value) {
  LQO_CHECK_LE(min_value, max_value);
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  ColumnBinning binning;
  int64_t low = min_value;
  for (int64_t cut : cuts) {
    if (cut < low || cut >= max_value) continue;
    binning.lows_.push_back(low);
    binning.highs_.push_back(cut);
    low = cut + 1;
  }
  binning.lows_.push_back(low);
  binning.highs_.push_back(max_value);
  return binning;
}

int ColumnBinning::BinOf(int64_t v) const {
  LQO_CHECK(!highs_.empty());
  auto it = std::lower_bound(highs_.begin(), highs_.end(), v);
  if (it == highs_.end()) return num_bins() - 1;
  return static_cast<int>(it - highs_.begin());
}

double ColumnBinning::OverlapFraction(int bin, int64_t lo, int64_t hi) const {
  int64_t blo = BinLow(bin);
  int64_t bhi = BinHigh(bin);
  int64_t olo = std::max(blo, lo);
  int64_t ohi = std::min(bhi, hi);
  if (olo > ohi) return 0.0;
  double span = static_cast<double>(bhi - blo + 1);
  return static_cast<double>(ohi - olo + 1) / span;
}

KeyBuckets::KeyBuckets(int64_t min_value, int64_t max_value, int num_buckets)
    : min_value_(min_value),
      max_value_(std::max(min_value, max_value)),
      num_buckets_(std::max(1, num_buckets)) {
  width_ = static_cast<double>(max_value_ - min_value_ + 1) /
           static_cast<double>(num_buckets_);
}

int KeyBuckets::BucketOf(int64_t v) const {
  if (v <= min_value_) return 0;
  if (v >= max_value_) return num_buckets_ - 1;
  int b = static_cast<int>(static_cast<double>(v - min_value_) / width_);
  return std::clamp(b, 0, num_buckets_ - 1);
}

int64_t KeyBuckets::BucketLow(int b) const {
  if (b <= 0) return min_value_;
  return min_value_ + static_cast<int64_t>(static_cast<double>(b) * width_);
}

int64_t KeyBuckets::BucketHigh(int b) const {
  if (b >= num_buckets_ - 1) return max_value_;
  return BucketLow(b + 1) - 1;
}

}  // namespace lqo
