#ifndef LQO_CARDINALITY_QUERY_DRIVEN_H_
#define LQO_CARDINALITY_QUERY_DRIVEN_H_

#include <memory>
#include <string>
#include <vector>

#include "cardinality/featurizer.h"
#include "cardinality/training_data.h"
#include "ml/feature_cache.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/linear.h"
#include "ml/mlp.h"
#include "optimizer/cardinality_interface.h"

namespace lqo {

/// Extra knobs for the query-driven estimators.
struct QueryDrivenOptions {
  /// Robust-MSCN-style training [45]: augment the training set with copies
  /// whose predicate feature slots are randomly masked, so the model does
  /// not over-rely on any one predicate and degrades gracefully when the
  /// workload shifts to unseen predicates.
  bool mask_training = false;
  double mask_probability = 0.3;
  uint64_t seed = 271;
};

/// Supervised workload-to-cardinality regressors in log space, covering the
/// query-driven rows of the paper's Table 1:
///  - kLinear: linear regression on query features (Malik et al. [36]),
///  - kGbdt:   tree ensembles / XGBoost (Dutt et al. [10], [9]),
///  - kMlp:    MSCN-style neural estimator (Kipf et al. [23]),
///  - kForest: random-forest ensemble whose spread doubles as the
///             uncertainty estimate (Fauce [33]; prediction intervals
///             evaluated as in Thirumuruganathan et al. [55]).
class QueryDrivenEstimator : public CardinalityEstimatorInterface {
 public:
  enum class ModelType { kLinear, kGbdt, kMlp, kForest };

  QueryDrivenEstimator(ModelType type, const Catalog* catalog,
                       const StatsCatalog* stats,
                       QueryDrivenOptions options = QueryDrivenOptions());

  /// Fits the regressor on the labeled sub-queries.
  void Train(const CeTrainingData& data);

  double EstimateSubquery(const Subquery& subquery) override;

  /// Batched estimation: all sub-queries featurize into one reusable
  /// feature matrix and the underlying model runs a single PredictBatch
  /// pass — element i bit-identical to EstimateSubquery(subqueries[i]).
  std::vector<double> EstimateSubqueryBatch(
      const std::vector<Subquery>& subqueries) override;

  /// Batched-inference counters of the underlying model.
  InferenceStatsSnapshot InferenceStats() const;

  /// Estimate with every predicate slot replaced by the Robust-MSCN
  /// "unknown predicate" token — the serving-time behavior when a
  /// predicate is detected as out-of-distribution. Meaningful for models
  /// trained with options.mask_training.
  double EstimateMasked(const Subquery& subquery);

  /// kForest only: estimate plus a central prediction interval
  /// [lo, hi] = exp(mean ± z * std) from the ensemble spread.
  double EstimateWithInterval(const Subquery& subquery, double z, double* lo,
                              double* hi);

  std::string Name() const override;

  bool trained() const { return trained_; }

 private:
  /// Writes the "present but unknown" sentinel into one predicate slot.
  static void MaskSlot(std::vector<double>* features, size_t start);
  double EstimateInternal(const Subquery& subquery, bool mask_predicates);

  ModelType type_;
  QueryDrivenOptions options_;
  QueryFeaturizer featurizer_;
  /// Train-time featurization cache keyed by Subquery::KeyHash(): labeled
  /// sub-queries repeat across retrain epochs (the harness retrains on a
  /// growing window of one workload), so their feature rows are computed
  /// once and served warm afterwards. Sound because the featurizer is a
  /// pure function of the sub-query for the catalog/stats snapshot this
  /// estimator holds for its lifetime.
  FeatureCache train_cache_;
  RidgeRegression linear_;
  GradientBoostedTrees gbdt_;
  Mlp mlp_;
  RandomForest forest_;
  bool trained_ = false;
  /// Reused across EstimateSubqueryBatch calls (capacity persists).
  FeatureMatrix batch_scratch_;
};

/// QuickSel-style mixture model [47]: per table, selectivity is modeled as
/// a weighted mixture of uniform kernels placed on observed training-query
/// predicate boxes, with weights fit by regularized least squares so the
/// mixture reproduces observed selectivities. Joins combine per-table
/// mixture selectivities with the native join formula.
class QuickSelEstimator : public CardinalityEstimatorInterface {
 public:
  QuickSelEstimator(const Catalog* catalog, const StatsCatalog* stats,
                    size_t max_kernels = 128);

  void Train(const CeTrainingData& data);

  double EstimateSubquery(const Subquery& subquery) override;
  std::string Name() const override { return "quicksel"; }

  /// Mixture selectivity of the local predicates of `table_index`; falls
  /// back to histogram selectivity for tables with no trained mixture.
  double TableSelectivity(const Query& query, int table_index) const;

 private:
  /// A normalized predicate box over a table's predicate columns, each
  /// dimension in [0,1].
  struct Box {
    std::vector<double> lo;
    std::vector<double> hi;
    double Volume() const;
    double OverlapVolume(const Box& other) const;
  };

  struct TableMixture {
    std::vector<std::string> columns;
    std::vector<Box> kernels;
    std::vector<double> weights;
  };

  Box BoxOf(const Query& query, int table_index,
            const TableMixture& mixture) const;

  const Catalog* catalog_;
  const StatsCatalog* stats_;
  size_t max_kernels_;
  std::map<std::string, TableMixture> mixtures_;
  bool trained_ = false;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_QUERY_DRIVEN_H_
