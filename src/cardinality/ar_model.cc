#include "cardinality/ar_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ml/gmm.h"

namespace lqo {
namespace {

// IAM-style discretization: cut between the means of a fitted 1-D GMM.
ColumnBinning GmmBinning(const Column& col, int num_components) {
  std::vector<double> values;
  values.reserve(col.data.size());
  for (int64_t v : col.data) values.push_back(static_cast<double>(v));
  GmmOptions options;
  options.num_components = num_components;
  GaussianMixture1D gmm(options);
  gmm.Fit(values);
  std::vector<double> means = gmm.means();
  std::sort(means.begin(), means.end());
  std::vector<int64_t> cuts;
  for (size_t c = 0; c + 1 < means.size(); ++c) {
    cuts.push_back(static_cast<int64_t>((means[c] + means[c + 1]) / 2.0));
  }
  return ColumnBinning::FromCutPoints(std::move(cuts), col.min_value,
                                      col.max_value);
}

}  // namespace

ArTableModel::ArTableModel(const Table* table, int max_bins, int num_samples,
                           uint64_t seed, bool gmm_binning)
    : table_(table), num_samples_(num_samples), seed_(seed) {
  LQO_CHECK(table_ != nullptr);
  LQO_CHECK_GT(table_->num_rows(), 0u);

  std::vector<std::vector<int64_t>> binned;
  for (const Column& col : table_->columns()) {
    column_names_.push_back(col.name);
    var_of_column_[col.name] = binnings_.size();
    ColumnBinning binning =
        gmm_binning && col.num_distinct > max_bins
            ? GmmBinning(col, std::max(2, max_bins / 3))
            : ColumnBinning::BuildEquiDepth(col.data, max_bins);
    std::vector<int64_t> codes(col.data.size());
    for (size_t r = 0; r < col.data.size(); ++r) {
      codes[r] = binning.BinOf(col.data[r]);
    }
    binnings_.push_back(std::move(binning));
    binned.push_back(std::move(codes));
  }

  size_t v = binnings_.size();
  size_t n = table_->num_rows();
  unigram_.resize(v);
  bigram_.resize(v);
  trigram_.resize(v);
  for (size_t i = 0; i < v; ++i) {
    size_t bins = static_cast<size_t>(binnings_[i].num_bins());
    unigram_[i].assign(bins, 1.0);  // Laplace
    for (size_t r = 0; r < n; ++r) {
      unigram_[i][static_cast<size_t>(binned[i][r])] += 1.0;
    }
    double total = 0.0;
    for (double c : unigram_[i]) total += c;
    for (double& c : unigram_[i]) c /= total;

    if (i >= 1) {
      size_t prev_bins = static_cast<size_t>(binnings_[i - 1].num_bins());
      bigram_[i].assign(prev_bins, std::vector<double>(bins, 0.5));
      for (size_t r = 0; r < n; ++r) {
        bigram_[i][static_cast<size_t>(binned[i - 1][r])]
                  [static_cast<size_t>(binned[i][r])] += 1.0;
      }
      for (auto& row : bigram_[i]) {
        double row_total = 0.0;
        for (double c : row) row_total += c;
        for (double& c : row) c /= row_total;
      }
    }
    if (i >= 2) {
      int64_t b2 = binnings_[i - 2].num_bins();
      for (size_t r = 0; r < n; ++r) {
        int64_t key = binned[i - 1][r] * b2 + binned[i - 2][r];
        auto& counts = trigram_[i][key];
        if (counts.empty()) counts.assign(bins, 0.0);
        counts[static_cast<size_t>(binned[i][r])] += 1.0;
      }
      for (auto& [key, counts] : trigram_[i]) {
        double row_total = 0.0;
        for (double c : counts) row_total += c;
        for (double& c : counts) c /= row_total;
      }
    }
  }
}

int ArTableModel::NumBinsOf(const std::string& column) const {
  return binnings_[var_of_column_.at(column)].num_bins();
}

double ArTableModel::Conditional(size_t var, int bin, int prev1,
                                 int prev2) const {
  double p = unigram_[var][static_cast<size_t>(bin)];
  if (var >= 1 && prev1 >= 0) {
    p = 0.3 * p +
        0.7 * bigram_[var][static_cast<size_t>(prev1)]
                        [static_cast<size_t>(bin)];
    if (var >= 2 && prev2 >= 0) {
      int64_t key = static_cast<int64_t>(prev1) *
                        binnings_[var - 2].num_bins() +
                    prev2;
      auto it = trigram_[var].find(key);
      if (it != trigram_[var].end()) {
        p = 0.4 * p + 0.6 * it->second[static_cast<size_t>(bin)];
      }
    }
  }
  return p;
}

std::vector<std::vector<double>> ArTableModel::AllowedOf(
    const Query& query, int table_index) const {
  std::vector<std::vector<double>> allowed(binnings_.size());
  for (size_t v = 0; v < binnings_.size(); ++v) {
    allowed[v].assign(static_cast<size_t>(binnings_[v].num_bins()), 1.0);
  }
  for (const Predicate& p : query.PredicatesOf(table_index)) {
    size_t v = var_of_column_.at(p.column);
    const ColumnBinning& binning = binnings_[v];
    for (int b = 0; b < binning.num_bins(); ++b) {
      double frac = 0.0;
      switch (p.kind) {
        case PredicateKind::kEquals:
          frac = binning.OverlapFraction(b, p.value, p.value);
          break;
        case PredicateKind::kRange:
          frac = binning.OverlapFraction(b, p.lo, p.hi);
          break;
        case PredicateKind::kIn:
          for (int64_t value : p.in_values) {
            frac += binning.OverlapFraction(b, value, value);
          }
          frac = std::min(frac, 1.0);
          break;
      }
      allowed[v][static_cast<size_t>(b)] *= frac;
    }
  }
  return allowed;
}

double ArTableModel::ProgressiveSample(
    const std::vector<std::vector<double>>& allowed, int key_var,
    const KeyBuckets* buckets, std::vector<double>* key_masses) const {
  Rng rng(seed_);
  size_t v = binnings_.size();
  double total_weight = 0.0;

  for (int s = 0; s < num_samples_; ++s) {
    double weight = 1.0;
    int prev1 = -1, prev2 = -1;
    int sampled_key_bin = -1;
    for (size_t i = 0; i < v && weight > 0.0; ++i) {
      size_t bins = allowed[i].size();
      // rho = sum over bins of P(bin | prefix) * allowed fraction.
      std::vector<double> masses(bins);
      double rho = 0.0;
      for (size_t b = 0; b < bins; ++b) {
        masses[b] =
            Conditional(i, static_cast<int>(b), prev1, prev2) * allowed[i][b];
        rho += masses[b];
      }
      if (rho <= 0.0) {
        weight = 0.0;
        break;
      }
      weight *= rho;
      size_t pick = rng.Categorical(masses);
      if (static_cast<int>(i) == key_var) {
        sampled_key_bin = static_cast<int>(pick);
      }
      prev2 = prev1;
      prev1 = static_cast<int>(pick);
    }
    total_weight += weight;
    if (key_masses != nullptr && weight > 0.0 && sampled_key_bin >= 0) {
      // Spread the path's weight across key buckets overlapped by the
      // sampled key bin.
      const ColumnBinning& binning = binnings_[static_cast<size_t>(key_var)];
      int64_t lo = binning.BinLow(sampled_key_bin);
      int64_t hi = binning.BinHigh(sampled_key_bin);
      int b_lo = buckets->BucketOf(lo);
      int b_hi = buckets->BucketOf(hi);
      double span = static_cast<double>(hi - lo + 1);
      for (int kb = b_lo; kb <= b_hi; ++kb) {
        int64_t seg_lo = std::max(lo, buckets->BucketLow(kb));
        int64_t seg_hi = std::min(hi, buckets->BucketHigh(kb));
        if (seg_lo > seg_hi) continue;
        (*key_masses)[static_cast<size_t>(kb)] +=
            weight * static_cast<double>(seg_hi - seg_lo + 1) / span;
      }
    }
  }
  double mean = total_weight / static_cast<double>(num_samples_);
  if (key_masses != nullptr) {
    for (double& m : *key_masses) {
      m = m / static_cast<double>(num_samples_) *
          static_cast<double>(table_->num_rows());
    }
  }
  return mean;
}

double ArTableModel::Selectivity(const Query& query, int table_index) const {
  std::vector<std::vector<double>> allowed = AllowedOf(query, table_index);
  return std::clamp(ProgressiveSample(allowed, -1, nullptr, nullptr), 0.0,
                    1.0);
}

std::vector<double> ArTableModel::FilteredKeyHistogram(
    const Query& query, int table_index, const std::string& key_column,
    const KeyBuckets& buckets) const {
  std::vector<std::vector<double>> allowed = AllowedOf(query, table_index);
  int key_var = static_cast<int>(var_of_column_.at(key_column));
  std::vector<double> masses(static_cast<size_t>(buckets.num_buckets()), 0.0);
  ProgressiveSample(allowed, key_var, &buckets, &masses);
  return masses;
}

}  // namespace lqo
