#include "cardinality/perror.h"

#include <algorithm>

#include "common/logging.h"

namespace lqo {
namespace {

/// Exact-cardinality estimator over the truth oracle.
class OracleEstimator : public CardinalityEstimatorInterface {
 public:
  explicit OracleEstimator(TrueCardinalityService* truth) : truth_(truth) {}
  double EstimateSubquery(const Subquery& subquery) override {
    return static_cast<double>(truth_->Cardinality(subquery));
  }
  std::string Name() const override { return "oracle"; }

 private:
  TrueCardinalityService* truth_;
};

}  // namespace

PErrorEvaluator::PErrorEvaluator(const Optimizer* optimizer,
                                 const AnalyticalCostModel* cost_model,
                                 TrueCardinalityService* truth)
    : optimizer_(optimizer), cost_model_(cost_model), truth_(truth) {
  LQO_CHECK(optimizer_ != nullptr);
  LQO_CHECK(cost_model_ != nullptr);
  LQO_CHECK(truth_ != nullptr);
}

double PErrorEvaluator::TrueCost(PhysicalPlan* plan) {
  OracleEstimator oracle(truth_);
  CardinalityProvider oracle_cards(&oracle);
  return cost_model_->PlanCost(plan, &oracle_cards);
}

double PErrorEvaluator::PError(const Query& query,
                               CardinalityEstimatorInterface* estimator) {
  LQO_CHECK(estimator != nullptr);
  OracleEstimator oracle(truth_);
  CardinalityProvider oracle_cards(&oracle);
  PlannerResult optimal = optimizer_->Optimize(query, &oracle_cards);
  // The optimal plan's estimated_cost already is its true cost.
  double optimal_cost = optimal.estimated_cost;

  CardinalityProvider estimated_cards(estimator);
  PlannerResult chosen = optimizer_->Optimize(query, &estimated_cards);
  double chosen_true_cost = TrueCost(&chosen.plan);

  LQO_CHECK_GT(optimal_cost, 0.0);
  // Guard tiny numerical slack: the chosen plan can never truly beat the
  // plan that is optimal under true cardinalities.
  return std::max(1.0, chosen_true_cost / optimal_cost);
}

std::vector<double> PErrorEvaluator::Evaluate(
    const Workload& workload, CardinalityEstimatorInterface* estimator) {
  std::vector<double> perrors;
  perrors.reserve(workload.queries.size());
  for (const Query& query : workload.queries) {
    perrors.push_back(PError(query, estimator));
  }
  return perrors;
}

}  // namespace lqo
