#include "cardinality/advisor.h"

#include <algorithm>
#include <cmath>

#include "cardinality/evaluation.h"
#include "common/logging.h"
#include "common/stats_util.h"

namespace lqo {

std::vector<AdvisorEntry> ModelAdvisor::Rank(
    std::vector<RegisteredEstimator>& suite,
    const std::vector<LabeledSubquery>& validation) {
  LQO_CHECK(!validation.empty());
  std::vector<AdvisorEntry> ranking;
  for (RegisteredEstimator& entry : suite) {
    AdvisorEntry result;
    result.method = entry.estimator->Name();
    result.geo_mean_qerror =
        EvaluateEstimator(entry.estimator.get(), validation).geometric_mean;
    ranking.push_back(std::move(result));
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const AdvisorEntry& a, const AdvisorEntry& b) {
              return a.geo_mean_qerror < b.geo_mean_qerror;
            });
  return ranking;
}

std::vector<double> ModelAdvisor::MetaFeatures(const Catalog& catalog,
                                               const StatsCatalog& stats) {
  double total_rows = 0.0;
  std::vector<double> correlations;
  std::vector<double> skews;
  std::vector<double> log_domains;

  for (const std::string& name : catalog.table_names()) {
    const Table& table = **catalog.GetTable(name);
    total_rows += static_cast<double>(table.num_rows());
    const TableStatistics& table_stats = stats.Of(name);

    // Pairwise column correlation on the stats sample.
    const std::vector<size_t>& sample = table_stats.sample_rows;
    std::vector<std::vector<double>> columns;
    for (const Column& col : table.columns()) {
      std::vector<double> values;
      values.reserve(sample.size());
      for (size_t r : sample) {
        values.push_back(static_cast<double>(col.data[r]));
      }
      columns.push_back(std::move(values));
      skews.push_back(table_stats.ColumnStatsOf(col.name).mcvs.empty()
                          ? 1.0 / std::max<double>(1.0, static_cast<double>(
                                                            col.num_distinct))
                          : table_stats.ColumnStatsOf(col.name)
                                .mcvs.front()
                                .second);
      log_domains.push_back(std::log(
          static_cast<double>(col.max_value - col.min_value + 1)));
    }
    for (size_t i = 0; i < columns.size(); ++i) {
      for (size_t j = i + 1; j < columns.size(); ++j) {
        correlations.push_back(
            std::abs(PearsonCorrelation(columns[i], columns[j])));
      }
    }
  }

  double mean_fanout = 0.0;
  if (!catalog.join_edges().empty()) {
    for (const JoinEdge& edge : catalog.join_edges()) {
      double left_rows =
          static_cast<double>(stats.Of(edge.left_table).row_count);
      double right_rows =
          static_cast<double>(stats.Of(edge.right_table).row_count);
      mean_fanout += std::max(left_rows, right_rows) /
                     std::max(1.0, std::min(left_rows, right_rows));
    }
    mean_fanout /= static_cast<double>(catalog.join_edges().size());
  }

  double max_corr = correlations.empty()
                        ? 0.0
                        : *std::max_element(correlations.begin(),
                                            correlations.end());
  return {std::log(total_rows + 1.0),
          static_cast<double>(catalog.table_names().size()),
          Mean(correlations),
          max_corr,
          Mean(skews),
          Mean(log_domains),
          mean_fanout};
}

void ModelAdvisor::Profile(const Catalog& catalog, const StatsCatalog& stats,
                           const std::string& best_method) {
  profiles_.push_back({MetaFeatures(catalog, stats), best_method});
}

std::string ModelAdvisor::Advise(const Catalog& catalog,
                                 const StatsCatalog& stats) const {
  LQO_CHECK(!profiles_.empty()) << "advisor has no profiled datasets";
  std::vector<double> features = MetaFeatures(catalog, stats);

  // Normalize distances per dimension over the profile set.
  size_t dim = features.size();
  std::vector<double> scale(dim, 1e-9);
  for (const Profiled& profile : profiles_) {
    for (size_t d = 0; d < dim; ++d) {
      scale[d] = std::max(scale[d], std::abs(profile.features[d]));
      scale[d] = std::max(scale[d], std::abs(features[d]));
    }
  }
  const Profiled* best = nullptr;
  double best_distance = 0.0;
  for (const Profiled& profile : profiles_) {
    double distance = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      double diff = (features[d] - profile.features[d]) / scale[d];
      distance += diff * diff;
    }
    if (best == nullptr || distance < best_distance) {
      best = &profile;
      best_distance = distance;
    }
  }
  return best->best_method;
}

}  // namespace lqo
