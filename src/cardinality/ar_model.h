#ifndef LQO_CARDINALITY_AR_MODEL_H_
#define LQO_CARDINALITY_AR_MODEL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cardinality/table_model.h"
#include "common/rng.h"
#include "storage/table.h"

namespace lqo {

/// Naru-style autoregressive density model [71] over discretized columns:
/// P(x) = prod_i P(x_i | x_{i-1}, x_{i-2}) with smoothed conditional tables
/// (backoff interpolation trigram -> bigram -> unigram), queried with
/// Naru's *progressive sampling* for range predicates. The deep
/// autoregressive network of the paper is substituted by the tabular
/// conditionals (see DESIGN.md); the factorization-plus-progressive-
/// sampling estimation algorithm is preserved.
class ArTableModel : public SingleTableDistribution {
 public:
  /// With gmm_binning (the IAM variant [40]), wide continuous columns are
  /// discretized by a fitted Gaussian mixture — cut points between the
  /// component means — instead of equi-depth cuts, shrinking their domains
  /// adaptively before the autoregressive factorization.
  ArTableModel(const Table* table, int max_bins = 40, int num_samples = 200,
               uint64_t seed = 601, bool gmm_binning = false);

  /// Bin count chosen for `column` (tests inspect the IAM reduction).
  int NumBinsOf(const std::string& column) const;

  double Selectivity(const Query& query, int table_index) const override;
  std::vector<double> FilteredKeyHistogram(
      const Query& query, int table_index, const std::string& key_column,
      const KeyBuckets& buckets) const override;
  std::string Kind() const override { return "ar"; }

 private:
  /// Smoothed P(x_i = bin | prev bins) with trigram/bigram/unigram backoff.
  double Conditional(size_t var, int bin, int prev1, int prev2) const;

  /// Per-bin allowed fractions from predicates (1.0 where unconstrained).
  std::vector<std::vector<double>> AllowedOf(const Query& query,
                                             int table_index) const;

  /// Runs progressive sampling; if `key_masses` is non-null, also
  /// accumulates P(predicates ∧ key bucket) masses for `key_var`.
  double ProgressiveSample(const std::vector<std::vector<double>>& allowed,
                           int key_var, const KeyBuckets* buckets,
                           std::vector<double>* key_masses) const;

  const Table* table_;
  int num_samples_;
  uint64_t seed_;
  std::vector<std::string> column_names_;
  std::map<std::string, size_t> var_of_column_;
  std::vector<ColumnBinning> binnings_;
  /// unigram_[v][b]; bigram_[v][prev1][b]; trigram_[v][prev1 * B2 + prev2][b]
  std::vector<std::vector<double>> unigram_;
  std::vector<std::vector<std::vector<double>>> bigram_;
  std::vector<std::map<int64_t, std::vector<double>>> trigram_;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_AR_MODEL_H_
