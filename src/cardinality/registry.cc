#include "cardinality/registry.h"

#include <chrono>

#include "cardinality/data_driven.h"
#include "cardinality/hybrid.h"
#include "cardinality/query_driven.h"
#include "cardinality/traditional.h"
#include "common/logging.h"

namespace lqo {
namespace {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

const char* CeCategoryName(CeCategory category) {
  switch (category) {
    case CeCategory::kTraditional:
      return "Traditional";
    case CeCategory::kQueryDrivenStatistical:
      return "Query-Driven (Statistical)";
    case CeCategory::kQueryDrivenDnn:
      return "Query-Driven (DNN-Based)";
    case CeCategory::kDataDriven:
      return "Data-Driven";
    case CeCategory::kHybrid:
      return "Hybrid";
  }
  return "Unknown";
}

std::vector<RegisteredEstimator> MakeEstimatorSuite(
    const Catalog& catalog, const StatsCatalog& stats,
    const CeTrainingData& training_data,
    const EstimatorSuiteOptions& options) {
  std::vector<RegisteredEstimator> suite;
  auto add = [&](std::unique_ptr<CardinalityEstimatorInterface> estimator,
                 CeCategory category, std::string represents,
                 double seconds) {
    RegisteredEstimator entry;
    entry.estimator = std::move(estimator);
    entry.category = category;
    entry.represents = std::move(represents);
    entry.build_seconds = seconds;
    suite.push_back(std::move(entry));
  };

  if (options.traditional) {
    {
      Stopwatch timer;
      auto estimator = std::make_unique<HistogramEstimator>(&catalog, &stats);
      add(std::move(estimator), CeCategory::kTraditional,
          "1-D histograms + independence (PostgreSQL default)",
          timer.Seconds());
    }
    {
      Stopwatch timer;
      auto estimator = std::make_unique<SamplingEstimator>(&catalog, 0.05);
      add(std::move(estimator), CeCategory::kTraditional,
          "uniform row sampling", timer.Seconds());
    }
  }

  if (options.query_driven) {
    {
      Stopwatch timer;
      auto estimator = std::make_unique<QueryDrivenEstimator>(
          QueryDrivenEstimator::ModelType::kLinear, &catalog, &stats);
      estimator->Train(training_data);
      add(std::move(estimator), CeCategory::kQueryDrivenStatistical,
          "linear model (Malik et al. [36])", timer.Seconds());
    }
    {
      Stopwatch timer;
      auto estimator = std::make_unique<QueryDrivenEstimator>(
          QueryDrivenEstimator::ModelType::kGbdt, &catalog, &stats);
      estimator->Train(training_data);
      add(std::move(estimator), CeCategory::kQueryDrivenStatistical,
          "tree ensembles / XGBoost (Dutt et al. [10],[9])",
          timer.Seconds());
    }
    {
      Stopwatch timer;
      auto estimator = std::make_unique<QuickSelEstimator>(&catalog, &stats);
      estimator->Train(training_data);
      add(std::move(estimator), CeCategory::kQueryDrivenStatistical,
          "uniform mixture model (QuickSel [47])", timer.Seconds());
    }
    {
      Stopwatch timer;
      auto estimator = std::make_unique<QueryDrivenEstimator>(
          QueryDrivenEstimator::ModelType::kForest, &catalog, &stats);
      estimator->Train(training_data);
      add(std::move(estimator), CeCategory::kQueryDrivenDnn,
          "deep ensemble with uncertainty (Fauce [33]/NNGP [75])",
          timer.Seconds());
    }
    if (options.include_mlp) {
      {
        Stopwatch timer;
        auto estimator = std::make_unique<QueryDrivenEstimator>(
            QueryDrivenEstimator::ModelType::kMlp, &catalog, &stats);
        estimator->Train(training_data);
        add(std::move(estimator), CeCategory::kQueryDrivenDnn,
            "set-featurized MLP (MSCN, Kipf et al. [23])", timer.Seconds());
      }
      {
        Stopwatch timer;
        QueryDrivenOptions robust_options;
        robust_options.mask_training = true;
        auto estimator = std::make_unique<QueryDrivenEstimator>(
            QueryDrivenEstimator::ModelType::kMlp, &catalog, &stats,
            robust_options);
        estimator->Train(training_data);
        add(std::move(estimator), CeCategory::kQueryDrivenDnn,
            "query masking for workload drift (Robust-MSCN [45])",
            timer.Seconds());
      }
    }
  }

  if (options.data_driven) {
    struct DataDrivenSpec {
      std::string name;
      TableModelKind kind;
      JoinCombineMode mode;
      std::string represents;
    };
    const DataDrivenSpec kSpecs[] = {
        {"kde", TableModelKind::kKde, JoinCombineMode::kIndependence,
         "kernel density models (Heimel [14], Kiefer [21])"},
        {"naru_ar", TableModelKind::kAr, JoinCombineMode::kKeyBuckets,
         "autoregressive + progressive sampling (Naru [71]/NeuroCard [70])"},
        {"bayesnet", TableModelKind::kBayesNet, JoinCombineMode::kKeyBuckets,
         "Chow-Liu Bayesian networks (BayesNet [57]/BayesCard [65])"},
        {"deepdb_spn", TableModelKind::kSpn, JoinCombineMode::kIndependence,
         "sum-product networks (DeepDB [17]/FLAT [81])"},
        {"factorjoin", TableModelKind::kSample, JoinCombineMode::kKeyBuckets,
         "per-table samples + join-key histograms (FactorJoin [64])"},
        {"iam_ar", TableModelKind::kIamAr, JoinCombineMode::kKeyBuckets,
         "GMM-discretized autoregressive model (IAM [40])"},
        {"iris_sketch", TableModelKind::kSketch,
         JoinCombineMode::kKeyBuckets,
         "column-group summarization sketches (Iris [35])"},
    };
    for (const DataDrivenSpec& spec : kSpecs) {
      Stopwatch timer;
      auto estimator = std::make_unique<DataDrivenEstimator>(
          spec.name, &catalog, &stats, spec.mode);
      estimator->SetUniformModelKind(spec.kind);
      estimator->Build();
      add(std::move(estimator), CeCategory::kDataDriven, spec.represents,
          timer.Seconds());
    }
  }

  if (options.hybrid) {
    {
      Stopwatch timer;
      auto estimator = std::make_unique<UaeEstimator>(&catalog, &stats);
      estimator->Train(training_data);
      add(std::move(estimator), CeCategory::kHybrid,
          "data+query joint model (UAE [63])", timer.Seconds());
    }
    {
      Stopwatch timer;
      auto estimator = MakeGlueEstimator(&catalog, &stats, training_data);
      add(std::move(estimator), CeCategory::kHybrid,
          "merged single-table models (GLUE [82]) + ALECE-style workload "
          "awareness [30]",
          timer.Seconds());
    }
  }

  return suite;
}

}  // namespace lqo
