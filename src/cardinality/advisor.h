#ifndef LQO_CARDINALITY_ADVISOR_H_
#define LQO_CARDINALITY_ADVISOR_H_

#include <string>
#include <vector>

#include "cardinality/registry.h"
#include "optimizer/table_stats.h"
#include "storage/catalog.h"

namespace lqo {

/// One estimator's validation outcome on a dataset.
struct AdvisorEntry {
  std::string method;
  double geo_mean_qerror = 0.0;
};

/// AutoCE-style model advisor [74]: recommends which estimator family to
/// deploy on a dataset. Two modes:
///  1. Rank(): exhaustive — score every trained estimator on validation
///     sub-queries (the ground truth the advisor learns from).
///  2. Profile()/Advise(): learned — characterize datasets by cheap meta
///     features (correlation strength, skew, domain sizes, schema size)
///     and recommend the method that won on the most similar profiled
///     dataset, without building any model on the new dataset.
class ModelAdvisor {
 public:
  ModelAdvisor() = default;

  /// Exhaustive validation ranking (best first).
  static std::vector<AdvisorEntry> Rank(
      std::vector<RegisteredEstimator>& suite,
      const std::vector<LabeledSubquery>& validation);

  /// Meta-features of a dataset: [log total rows, num tables, mean
  /// |pairwise column correlation|, max correlation, mean skew (top MCV
  /// frequency), mean log domain size, mean join fanout].
  static std::vector<double> MetaFeatures(const Catalog& catalog,
                                          const StatsCatalog& stats);

  /// Records that `best_method` won on the dataset with these features.
  void Profile(const Catalog& catalog, const StatsCatalog& stats,
               const std::string& best_method);

  /// Nearest-profile recommendation for a new dataset. Requires at least
  /// one profiled dataset.
  std::string Advise(const Catalog& catalog, const StatsCatalog& stats) const;

  size_t num_profiles() const { return profiles_.size(); }

 private:
  struct Profiled {
    std::vector<double> features;
    std::string best_method;
  };
  std::vector<Profiled> profiles_;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_ADVISOR_H_
