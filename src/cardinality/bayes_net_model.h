#ifndef LQO_CARDINALITY_BAYES_NET_MODEL_H_
#define LQO_CARDINALITY_BAYES_NET_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "cardinality/table_model.h"
#include "storage/table.h"

namespace lqo {

/// Tree-structured Bayesian network over discretized columns
/// (Tzoumas et al. [57] / BayesCard [65]): structure learned with Chow-Liu,
/// CPTs with Laplace smoothing, exact inference by belief propagation on
/// the tree. Predicates enter as soft per-bin evidence (bin overlap
/// fractions).
class BayesNetTableModel : public SingleTableDistribution {
 public:
  BayesNetTableModel(const Table* table, int max_bins = 40);

  double Selectivity(const Query& query, int table_index) const override;
  std::vector<double> FilteredKeyHistogram(
      const Query& query, int table_index, const std::string& key_column,
      const KeyBuckets& buckets) const override;
  std::string Kind() const override { return "bayesnet"; }

 private:
  /// Soft evidence: per-variable allowed fraction of each bin.
  std::vector<std::vector<double>> EvidenceOf(const Query& query,
                                              int table_index) const;

  /// Joint beliefs P(x_v = bin ∧ evidence) for every variable, via one
  /// up-pass and one down-pass over the tree. Returns per-variable vectors;
  /// summing any variable's vector gives P(evidence).
  std::vector<std::vector<double>> Beliefs(
      const std::vector<std::vector<double>>& evidence) const;

  const Table* table_;
  std::vector<std::string> column_names_;
  std::vector<ColumnBinning> binnings_;
  std::map<std::string, size_t> var_of_column_;
  std::vector<int> parent_;
  std::vector<int> order_;  // topological, root first
  /// cpt_[v][parent_bin][bin] = P(x_v = bin | parent = parent_bin); the
  /// root uses parent_bin = 0 only.
  std::vector<std::vector<std::vector<double>>> cpt_;
};

}  // namespace lqo

#endif  // LQO_CARDINALITY_BAYES_NET_MODEL_H_
