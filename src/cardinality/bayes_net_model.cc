#include "cardinality/bayes_net_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "ml/chow_liu.h"

namespace lqo {

BayesNetTableModel::BayesNetTableModel(const Table* table, int max_bins)
    : table_(table) {
  LQO_CHECK(table_ != nullptr);
  LQO_CHECK_GT(table_->num_rows(), 0u);

  // Discretize every column: independent per column, index-addressed.
  const std::vector<Column>& columns = table_->columns();
  for (const Column& col : columns) {
    column_names_.push_back(col.name);
    var_of_column_[col.name] = var_of_column_.size();
  }
  struct BinnedColumn {
    ColumnBinning binning;
    std::vector<int64_t> codes;
  };
  std::vector<BinnedColumn> discretized =
      ParallelMap(columns.size(), [&](size_t c) {
        BinnedColumn out;
        out.binning = ColumnBinning::BuildEquiDepth(columns[c].data, max_bins);
        out.codes.resize(columns[c].data.size());
        for (size_t r = 0; r < columns[c].data.size(); ++r) {
          out.codes[r] = out.binning.BinOf(columns[c].data[r]);
        }
        return out;
      });
  std::vector<std::vector<int64_t>> binned;
  std::vector<int64_t> domains;
  for (BinnedColumn& col : discretized) {
    domains.push_back(col.binning.num_bins());
    binnings_.push_back(std::move(col.binning));
    binned.push_back(std::move(col.codes));
  }

  ChowLiuResult structure = LearnChowLiuTree(binned, domains);
  parent_ = structure.parent;
  order_ = structure.topological_order;

  // CPTs with Laplace smoothing: each variable's table depends only on its
  // own codes and its parent's, so the fits are independent.
  size_t v = column_names_.size();
  cpt_ = ParallelMap(v, [&](size_t i) {
    int64_t bins = domains[i];
    int64_t parent_bins = parent_[i] < 0
                              ? 1
                              : domains[static_cast<size_t>(parent_[i])];
    std::vector<std::vector<double>> cpt(
        static_cast<size_t>(parent_bins),
        std::vector<double>(static_cast<size_t>(bins), 1.0));
    const std::vector<int64_t>& child = binned[i];
    for (size_t r = 0; r < child.size(); ++r) {
      size_t pb = parent_[i] < 0
                      ? 0
                      : static_cast<size_t>(
                            binned[static_cast<size_t>(parent_[i])][r]);
      cpt[pb][static_cast<size_t>(child[r])] += 1.0;
    }
    for (auto& row : cpt) {
      double total = 0.0;
      for (double c : row) total += c;
      for (double& c : row) c /= total;
    }
    return cpt;
  });
}

std::vector<std::vector<double>> BayesNetTableModel::EvidenceOf(
    const Query& query, int table_index) const {
  std::vector<std::vector<double>> evidence(binnings_.size());
  for (size_t v = 0; v < binnings_.size(); ++v) {
    evidence[v].assign(static_cast<size_t>(binnings_[v].num_bins()), 1.0);
  }
  for (const Predicate& p : query.PredicatesOf(table_index)) {
    size_t v = var_of_column_.at(p.column);
    const ColumnBinning& binning = binnings_[v];
    std::vector<double> allowed(
        static_cast<size_t>(binning.num_bins()), 0.0);
    for (int b = 0; b < binning.num_bins(); ++b) {
      double frac = 0.0;
      switch (p.kind) {
        case PredicateKind::kEquals:
          frac = binning.OverlapFraction(b, p.value, p.value);
          break;
        case PredicateKind::kRange:
          frac = binning.OverlapFraction(b, p.lo, p.hi);
          break;
        case PredicateKind::kIn:
          for (int64_t value : p.in_values) {
            frac += binning.OverlapFraction(b, value, value);
          }
          frac = std::min(frac, 1.0);
          break;
      }
      allowed[static_cast<size_t>(b)] = frac;
    }
    for (size_t b = 0; b < allowed.size(); ++b) {
      evidence[v][b] *= allowed[b];
    }
  }
  return evidence;
}

std::vector<std::vector<double>> BayesNetTableModel::Beliefs(
    const std::vector<std::vector<double>>& evidence) const {
  size_t v = binnings_.size();
  // Upward messages: up[i][parent_bin] from child i to its parent.
  std::vector<std::vector<double>> up(v);
  // phi[i][bin] = evidence_i(bin) * prod of children's upward messages.
  std::vector<std::vector<double>> phi(v);
  for (size_t i = 0; i < v; ++i) phi[i] = evidence[i];

  // Children lists.
  std::vector<std::vector<int>> children(v);
  for (size_t i = 0; i < v; ++i) {
    if (parent_[i] >= 0) {
      children[static_cast<size_t>(parent_[i])].push_back(
          static_cast<int>(i));
    }
  }

  // Up pass in reverse topological order.
  for (size_t oi = order_.size(); oi > 0; --oi) {
    size_t i = static_cast<size_t>(order_[oi - 1]);
    for (int c : children[i]) {
      for (size_t b = 0; b < phi[i].size(); ++b) {
        phi[i][b] *= up[static_cast<size_t>(c)][b];
      }
    }
    if (parent_[i] >= 0) {
      size_t parent_bins = cpt_[i].size();
      std::vector<double> message(parent_bins, 0.0);
      for (size_t pb = 0; pb < parent_bins; ++pb) {
        double sum = 0.0;
        for (size_t b = 0; b < phi[i].size(); ++b) {
          sum += cpt_[i][pb][b] * phi[i][b];
        }
        message[pb] = sum;
      }
      up[i] = std::move(message);
    }
  }

  // Root belief: P(x_root ∧ e) = P(x_root) * phi_root.
  std::vector<std::vector<double>> belief(v);
  size_t root = static_cast<size_t>(order_[0]);
  belief[root].resize(phi[root].size());
  for (size_t b = 0; b < phi[root].size(); ++b) {
    belief[root][b] = cpt_[root][0][b] * phi[root][b];
  }

  // Down pass in topological order: belief[i](x_i) =
  //   evidence-weighted phi * sum over parent bins of
  //   P(x_i | x_p) * (belief[p](x_p) / up-message_i(x_p)).
  for (size_t oi = 1; oi < order_.size(); ++oi) {
    size_t i = static_cast<size_t>(order_[oi]);
    size_t p = static_cast<size_t>(parent_[i]);
    std::vector<double> parent_excl(belief[p].size(), 0.0);
    for (size_t pb = 0; pb < belief[p].size(); ++pb) {
      double denom = up[i][pb];
      parent_excl[pb] = denom > 1e-300 ? belief[p][pb] / denom : 0.0;
    }
    belief[i].assign(phi[i].size(), 0.0);
    for (size_t b = 0; b < phi[i].size(); ++b) {
      double sum = 0.0;
      for (size_t pb = 0; pb < parent_excl.size(); ++pb) {
        sum += cpt_[i][pb][b] * parent_excl[pb];
      }
      belief[i][b] = sum * phi[i][b];
    }
  }
  return belief;
}

double BayesNetTableModel::Selectivity(const Query& query,
                                       int table_index) const {
  std::vector<std::vector<double>> beliefs =
      Beliefs(EvidenceOf(query, table_index));
  size_t root = static_cast<size_t>(order_[0]);
  double p = 0.0;
  for (double b : beliefs[root]) p += b;
  return std::clamp(p, 0.0, 1.0);
}

std::vector<double> BayesNetTableModel::FilteredKeyHistogram(
    const Query& query, int table_index, const std::string& key_column,
    const KeyBuckets& buckets) const {
  size_t key_var = var_of_column_.at(key_column);
  std::vector<std::vector<double>> beliefs =
      Beliefs(EvidenceOf(query, table_index));
  const ColumnBinning& binning = binnings_[key_var];
  double rows = static_cast<double>(table_->num_rows());

  std::vector<double> masses(static_cast<size_t>(buckets.num_buckets()), 0.0);
  for (int bin = 0; bin < binning.num_bins(); ++bin) {
    double mass = beliefs[key_var][static_cast<size_t>(bin)] * rows;
    if (mass <= 0.0) continue;
    // Spread the bin's mass across the key buckets it overlaps,
    // proportionally to integer span.
    int64_t lo = binning.BinLow(bin);
    int64_t hi = binning.BinHigh(bin);
    int b_lo = buckets.BucketOf(lo);
    int b_hi = buckets.BucketOf(hi);
    if (b_lo == b_hi) {
      masses[static_cast<size_t>(b_lo)] += mass;
      continue;
    }
    double span = static_cast<double>(hi - lo + 1);
    for (int kb = b_lo; kb <= b_hi; ++kb) {
      int64_t seg_lo = std::max(lo, buckets.BucketLow(kb));
      int64_t seg_hi = std::min(hi, buckets.BucketHigh(kb));
      if (seg_lo > seg_hi) continue;
      masses[static_cast<size_t>(kb)] +=
          mass * static_cast<double>(seg_hi - seg_lo + 1) / span;
    }
  }
  return masses;
}

}  // namespace lqo
