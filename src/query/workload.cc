#include "query/workload.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/logging.h"
#include "common/rng.h"

namespace lqo {
namespace {

// Schema-level join edge endpoints as (table -> columns used in joins).
std::set<std::string> JoinColumnsOf(const Catalog& catalog,
                                    const std::string& table) {
  std::set<std::string> cols;
  for (const JoinEdge& e : catalog.join_edges()) {
    if (e.left_table == table) cols.insert(e.left_column);
    if (e.right_table == table) cols.insert(e.right_column);
  }
  return cols;
}

Predicate MakePredicateOn(const Table& table, const std::string& column_name,
                          int table_index, const WorkloadOptions& options,
                          Rng& rng) {
  size_t col_idx = table.ColumnIndex(column_name).value();
  const Column& col = table.column(col_idx);
  LQO_CHECK_GT(table.num_rows(), 0u);
  // Anchor on an existing row so predicates are never trivially empty.
  int64_t anchor = col.data[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(table.num_rows()) - 1))];

  double r = rng.UniformDouble(0.0, 1.0);
  if (r < options.equality_prob) {
    return Predicate::Equals(table_index, column_name, anchor);
  }
  if (r < options.equality_prob + options.in_prob) {
    std::vector<int64_t> values = {anchor};
    int extra = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < extra; ++i) {
      values.push_back(col.data[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(table.num_rows()) - 1))]);
    }
    return Predicate::In(table_index, column_name, std::move(values));
  }
  // Range around the anchor; width scales with the column's span so both
  // tight and wide ranges occur.
  int64_t span = std::max<int64_t>(1, col.max_value - col.min_value);
  int64_t width = std::max<int64_t>(
      0, static_cast<int64_t>(rng.UniformDouble(0.0, 0.4) *
                              static_cast<double>(span)));
  double side = rng.UniformDouble(0.0, 1.0);
  int64_t lo, hi;
  if (side < 0.25) {
    lo = col.min_value;  // one-sided <=
    hi = anchor;
  } else if (side < 0.5) {
    lo = anchor;  // one-sided >=
    hi = col.max_value;
  } else {
    lo = anchor - width / 2;
    hi = anchor + width / 2;
  }
  lo = std::max(lo, col.min_value);
  hi = std::min(hi, col.max_value);
  if (lo > hi) std::swap(lo, hi);
  return Predicate::Range(table_index, column_name, lo, hi);
}

// Attaches a random output stage to `query`. Candidate columns are the same
// non-join, non-surrogate columns the predicate sampler uses, across every
// chosen table. Only called when an output stage was decided, so all RNG
// draws here are behind the output_stage_prob gate.
void AddRandomOutputs(const Catalog& catalog,
                      const std::vector<std::string>& chosen,
                      std::map<std::string, int>& index_of,
                      const WorkloadOptions& options, Rng& rng, Query* query) {
  std::vector<std::pair<int, std::string>> candidates;
  for (const std::string& table : chosen) {
    for (const std::string& col : PredicateColumns(catalog, table)) {
      candidates.emplace_back(index_of[table], col);
    }
  }
  if (candidates.empty()) {
    // Degenerate schema (all columns are join keys): explicit COUNT(*).
    query->AddOutput(OutputExpr::CountStar());
    return;
  }
  auto pick = [&]() -> const std::pair<int, std::string>& {
    return candidates[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
  };
  static constexpr AggFunc kFuncs[] = {AggFunc::kCount, AggFunc::kSum,
                                       AggFunc::kMin, AggFunc::kMax,
                                       AggFunc::kAvg};
  int items = static_cast<int>(
      rng.UniformInt(1, std::max(1, options.max_output_items)));
  if (rng.Bernoulli(options.group_by_prob)) {
    // Grouped aggregation: key column first, then aggregates per group.
    const auto& key = pick();
    query->AddOutput(OutputExpr::Column(key.first, key.second));
    for (int i = 0; i < items; ++i) {
      const auto& c = pick();
      AggFunc func = kFuncs[static_cast<size_t>(rng.UniformInt(0, 4))];
      query->AddOutput(OutputExpr::Aggregate(func, c.first, c.second));
    }
    query->SetGroupBy(key.first, key.second);
  } else if (rng.Bernoulli(0.5)) {
    // Global aggregates over the qualifying rows.
    for (int i = 0; i < items; ++i) {
      const auto& c = pick();
      AggFunc func = kFuncs[static_cast<size_t>(rng.UniformInt(0, 4))];
      query->AddOutput(OutputExpr::Aggregate(func, c.first, c.second));
    }
  } else {
    // Bare projection of qualifying rows.
    for (int i = 0; i < items; ++i) {
      const auto& c = pick();
      query->AddOutput(OutputExpr::Column(c.first, c.second));
    }
  }
}

}  // namespace

std::vector<std::string> PredicateColumns(const Catalog& catalog,
                                          const std::string& table) {
  const Table& t = *catalog.GetTable(table).value();
  std::set<std::string> join_cols = JoinColumnsOf(catalog, table);
  std::vector<std::string> result;
  for (const Column& col : t.columns()) {
    if (join_cols.count(col.name) > 0) continue;
    if (col.name == "id") continue;  // surrogate keys are join-only.
    result.push_back(col.name);
  }
  return result;
}

Query ResampleConstants(const Catalog& catalog, const Query& query, Rng& rng,
                        double range_widen) {
  Query out;
  for (const QueryTable& t : query.tables()) {
    out.AddTable(t.table_name, t.alias);
  }
  for (const QueryJoin& j : query.joins()) {
    out.AddJoin(j.left_table, j.left_column, j.right_table, j.right_column);
  }
  // The output stage is structure, not a constant: copy it through verbatim
  // so the resampled binding has the same type (and output shape).
  for (const OutputExpr& o : query.outputs()) out.AddOutput(o);
  if (query.has_group_by()) {
    out.SetGroupBy(query.group_by_table(), query.group_by_column());
  }
  for (const Predicate& p : query.predicates()) {
    const Table& table =
        *catalog.GetTable(query.tables()[static_cast<size_t>(p.table_index)]
                              .table_name)
             .value();
    size_t col_idx = table.ColumnIndex(p.column).value();
    const Column& col = table.column(col_idx);
    LQO_CHECK_GT(table.num_rows(), 0u);
    auto draw = [&]() {
      return col.data[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(table.num_rows()) - 1))];
    };
    int64_t anchor = draw();
    switch (p.kind) {
      case PredicateKind::kEquals:
        out.AddPredicate(Predicate::Equals(p.table_index, p.column, anchor));
        break;
      case PredicateKind::kIn: {
        std::vector<int64_t> values;
        values.reserve(p.in_values.size());
        for (size_t i = 0; i < p.in_values.size(); ++i) values.push_back(draw());
        out.AddPredicate(
            Predicate::In(p.table_index, p.column, std::move(values)));
        break;
      }
      case PredicateKind::kRange: {
        int64_t span = std::max<int64_t>(1, col.max_value - col.min_value);
        // Width uniform in [0.2, 0.4] * range_widen * span: bounded away
        // from zero so same-scale bindings have bounded selectivity
        // variance, while range_widen far from 1 still produces near-point
        // (or whole-span) ranges.
        int64_t width = static_cast<int64_t>(
            rng.UniformDouble(0.2, 0.4) * range_widen *
            static_cast<double>(span));
        width = std::clamp<int64_t>(width, 0, span);
        int64_t lo = std::max(anchor - width / 2, col.min_value);
        int64_t hi = std::min(anchor + width / 2, col.max_value);
        if (lo > hi) std::swap(lo, hi);
        out.AddPredicate(Predicate::Range(p.table_index, p.column, lo, hi));
        break;
      }
    }
  }
  return out;
}

Workload GenerateWorkload(const Catalog& catalog,
                          const WorkloadOptions& options) {
  Rng rng(options.seed);
  Workload workload;
  const std::vector<std::string>& all_tables = catalog.table_names();
  LQO_CHECK(!all_tables.empty());

  int schema_size = static_cast<int>(all_tables.size());
  int min_tables = std::clamp(options.min_tables, 1, schema_size);
  int max_tables = std::clamp(options.max_tables, min_tables, schema_size);

  while (static_cast<int>(workload.queries.size()) < options.num_queries) {
    int target = static_cast<int>(rng.UniformInt(min_tables, max_tables));

    // Grow a connected table set by random walk over schema join edges.
    std::vector<std::string> chosen;
    std::set<std::string> chosen_set;
    std::string start = all_tables[static_cast<size_t>(
        rng.UniformInt(0, schema_size - 1))];
    chosen.push_back(start);
    chosen_set.insert(start);
    while (static_cast<int>(chosen.size()) < target) {
      // Candidate edges: one end inside, one end outside.
      std::vector<std::string> candidates;
      for (const JoinEdge& e : catalog.join_edges()) {
        bool left_in = chosen_set.count(e.left_table) > 0;
        bool right_in = chosen_set.count(e.right_table) > 0;
        if (left_in && !right_in) candidates.push_back(e.right_table);
        if (right_in && !left_in) candidates.push_back(e.left_table);
      }
      if (candidates.empty()) break;  // no way to grow further.
      const std::string& next = candidates[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(candidates.size()) - 1))];
      chosen.push_back(next);
      chosen_set.insert(next);
    }

    Query query;
    std::map<std::string, int> index_of;
    for (const std::string& table : chosen) {
      index_of[table] = query.AddTable(table);
    }

    // Join edges induced by the chosen set. Always keep enough to stay
    // connected (we add them greedily, union-find style), and keep the rest
    // with probability extra_edge_prob.
    std::vector<int> parent(chosen.size());
    for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
    auto find = [&](int x) {
      while (parent[static_cast<size_t>(x)] != x) x = parent[static_cast<size_t>(x)];
      return x;
    };
    for (const JoinEdge& e : catalog.join_edges()) {
      auto li = index_of.find(e.left_table);
      auto ri = index_of.find(e.right_table);
      if (li == index_of.end() || ri == index_of.end()) continue;
      int a = find(li->second), b = find(ri->second);
      bool needed = a != b;
      if (needed || rng.Bernoulli(options.extra_edge_prob)) {
        query.AddJoin(li->second, e.left_column, ri->second, e.right_column);
        if (needed) parent[static_cast<size_t>(a)] = b;
      }
    }
    if (!query.IsConnected(query.AllTables())) continue;  // retry.

    // Predicates.
    for (const std::string& table : chosen) {
      std::vector<std::string> cols = PredicateColumns(catalog, table);
      if (cols.empty()) continue;
      int count = static_cast<int>(
          rng.UniformInt(0, options.max_predicates_per_table));
      rng.Shuffle(cols);
      count = std::min<int>(count, static_cast<int>(cols.size()));
      const Table& t = *catalog.GetTable(table).value();
      for (int i = 0; i < count; ++i) {
        query.AddPredicate(
            MakePredicateOn(t, cols[static_cast<size_t>(i)],
                            index_of[table], options, rng));
      }
    }

    // Output stage. The gate on output_stage_prob > 0 (not just the
    // Bernoulli draw) keeps the default configuration's RNG stream — and
    // therefore every seeded legacy workload — byte-identical.
    if (options.output_stage_prob > 0.0 &&
        rng.Bernoulli(options.output_stage_prob)) {
      AddRandomOutputs(catalog, chosen, index_of, options, rng, &query);
    }

    workload.queries.push_back(std::move(query));
  }
  return workload;
}

}  // namespace lqo
