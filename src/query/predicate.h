#ifndef LQO_QUERY_PREDICATE_H_
#define LQO_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lqo {

/// Predicate shapes supported by the SPJ query model. Comparison operators
/// are normalized at construction: `=` becomes kEquals, `<,<=,>,>=,BETWEEN`
/// become an inclusive kRange, `IN` stays kIn.
enum class PredicateKind { kEquals, kRange, kIn };

/// A conjunct over a single column of a single query table.
struct Predicate {
  /// Index into Query::tables.
  int table_index = 0;
  std::string column;
  PredicateKind kind = PredicateKind::kEquals;

  /// kEquals payload.
  int64_t value = 0;
  /// kRange payload, inclusive on both ends.
  int64_t lo = 0;
  int64_t hi = 0;
  /// kIn payload, sorted ascending.
  std::vector<int64_t> in_values;

  /// Factory helpers.
  static Predicate Equals(int table_index, std::string column, int64_t value);
  static Predicate Range(int table_index, std::string column, int64_t lo,
                         int64_t hi);
  static Predicate In(int table_index, std::string column,
                      std::vector<int64_t> values);

  /// True if `v` satisfies this predicate.
  bool Matches(int64_t v) const;

  /// Canonical rendering, e.g. "t1.score in [3,8]".
  std::string ToString() const;
};

}  // namespace lqo

#endif  // LQO_QUERY_PREDICATE_H_
