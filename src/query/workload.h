#ifndef LQO_QUERY_WORKLOAD_H_
#define LQO_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "storage/catalog.h"
#include "query/query.h"

namespace lqo {

/// Knobs for the random SPJ workload generator.
struct WorkloadOptions {
  uint64_t seed = 7;
  int num_queries = 100;
  /// Number of FROM tables per query, clamped to the schema size. Tables
  /// are chosen as a connected subgraph of the schema join graph.
  int min_tables = 1;
  int max_tables = 4;
  /// Per-table predicate count is uniform in [0, max_predicates_per_table].
  int max_predicates_per_table = 2;
  /// Among predicates: probability of equality / IN; the rest are ranges.
  double equality_prob = 0.45;
  double in_prob = 0.1;
  /// Probability of including each induced (non-spanning-tree) join edge,
  /// producing cyclic join graphs as in JOB.
  double extra_edge_prob = 0.5;
  /// Probability a query gets an explicit output stage (projection, global
  /// aggregates, or grouped aggregation) instead of the legacy COUNT(*).
  /// The default 0 draws *zero* extra RNG values, so seeded workloads stay
  /// byte-identical to those generated before output stages existed.
  double output_stage_prob = 0.0;
  /// Given an output stage: probability it is a grouped aggregation (GROUP
  /// BY key column + aggregates) rather than a projection / global-agg list.
  double group_by_prob = 0.5;
  /// Output-stage item count is uniform in [1, max_output_items] (aggregates
  /// for aggregation shapes, bare columns for projections).
  int max_output_items = 3;
};

/// A generated batch of queries over one catalog.
struct Workload {
  std::vector<Query> queries;
};

/// Generates a deterministic random SPJ workload over `catalog`'s schema
/// join graph. Predicate constants are sampled from actual table rows so
/// every predicate has non-trivial selectivity.
Workload GenerateWorkload(const Catalog& catalog,
                          const WorkloadOptions& options);

/// Columns of `table` that participate in no schema join edge — the columns
/// the generator places predicates on.
std::vector<std::string> PredicateColumns(const Catalog& catalog,
                                          const std::string& table);

/// Rebuilds `query` with identical tables, aliases, join graph and predicate
/// shapes (column + kind, and the same IN-list length) but freshly sampled
/// constants — a new parameter binding of the same structural query type, so
/// QueryTypeHash(ResampleConstants(q)) == QueryTypeHash(q) always. Constants
/// are anchored on actual rows like GenerateWorkload's; range predicates are
/// resampled two-sided with width scaled by `range_widen` (>1 widens toward
/// whole-column spans, <1 tightens — the serving benches use this to stage
/// cardinality drift and parameter-sensitive types).
Query ResampleConstants(const Catalog& catalog, const Query& query, Rng& rng,
                        double range_widen = 1.0);

}  // namespace lqo

#endif  // LQO_QUERY_WORKLOAD_H_
