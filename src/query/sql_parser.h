#ifndef LQO_QUERY_SQL_PARSER_H_
#define LQO_QUERY_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "storage/catalog.h"
#include "query/query.h"

namespace lqo {

/// Parses a SQL subset into the SPJ query model, resolving string literals
/// against column dictionaries. Supported grammar:
///
///   SELECT COUNT(*) FROM <table> <alias> [, <table> <alias>]*
///   [WHERE <cond> [AND <cond>]*] [;]
///
///   <cond> := a.col = b.col                  -- equi join
///           | a.col (=|<|<=|>|>=) <literal>  -- comparison
///           | a.col BETWEEN <lit> AND <lit>
///           | a.col IN (<lit> [, <lit>]*)
///   <literal> := integer | 'string'
///
/// Keywords are case-insensitive. Comparisons on categorical columns use
/// dictionary order (codes are assigned in sorted order).
StatusOr<Query> ParseSql(const Catalog& catalog, const std::string& sql);

}  // namespace lqo

#endif  // LQO_QUERY_SQL_PARSER_H_
