#ifndef LQO_QUERY_QUERY_H_
#define LQO_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/predicate.h"

namespace lqo {

/// Bitmask of query-table indices (bit i = Query::tables[i]). Queries are
/// limited to 64 tables, far above anything in the workloads.
using TableSet = uint64_t;

inline TableSet TableBit(int index) { return TableSet{1} << index; }
inline bool ContainsTable(TableSet set, int index) {
  return (set & TableBit(index)) != 0;
}
inline int PopCount(TableSet set) { return __builtin_popcountll(set); }

/// One FROM-clause entry.
struct QueryTable {
  std::string table_name;
  std::string alias;
};

/// An equi-join conjunct between two query tables.
struct QueryJoin {
  int left_table = 0;
  std::string left_column;
  int right_table = 0;
  std::string right_column;

  /// True if the join connects a table inside `set` with one outside it, or
  /// both inside.
  bool WithinSet(TableSet set) const {
    return ContainsTable(set, left_table) && ContainsTable(set, right_table);
  }
};

/// A select-project-join COUNT(*) query: the unit of work throughout the
/// library, matching the query class used by the cardinality-estimation and
/// learned-optimizer literature the paper surveys.
class Query {
 public:
  Query() = default;

  /// Adds a FROM entry; returns its index. Alias defaults to t<i>.
  int AddTable(const std::string& table_name, std::string alias = "");

  void AddJoin(int left_table, const std::string& left_column,
               int right_table, const std::string& right_column);
  void AddPredicate(Predicate predicate);

  const std::vector<QueryTable>& tables() const { return tables_; }
  const std::vector<QueryJoin>& joins() const { return joins_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  int num_tables() const { return static_cast<int>(tables_.size()); }

  /// Mask with all query tables set.
  TableSet AllTables() const;

  /// Predicates whose table_index == `table_index`.
  std::vector<Predicate> PredicatesOf(int table_index) const;

  /// Joins with both endpoints inside `set`.
  std::vector<QueryJoin> JoinsWithin(TableSet set) const;

  /// Adjacency over the join graph: tables (by index) sharing a join with
  /// `table_index`.
  std::vector<int> Neighbors(int table_index) const;

  /// True if the join graph restricted to `set` is connected.
  bool IsConnected(TableSet set) const;

  /// SQL-ish rendering for logs and docs.
  std::string ToString() const;

 private:
  std::vector<QueryTable> tables_;
  std::vector<QueryJoin> joins_;
  std::vector<Predicate> predicates_;
};

/// A view of a query restricted to a connected subset of its tables — the
/// "sub-query Q' of Q" whose cardinality the estimator component predicts.
struct Subquery {
  const Query* query = nullptr;
  TableSet tables = 0;

  /// Canonical cache key: identical logical subqueries (same base tables,
  /// predicates and join structure) map to the same key even across Query
  /// objects.
  std::string Key() const;

  /// 64-bit structural hash of Key() — same canonicalization (neutralized
  /// table indices, order-independent predicate/join combination) without
  /// materializing any strings, so hot cache lookups stay allocation-free.
  /// Equal Key() implies equal KeyHash(); collisions between distinct keys
  /// are possible in principle but vanishingly rare at 64 bits.
  uint64_t KeyHash() const;
};

}  // namespace lqo

#endif  // LQO_QUERY_QUERY_H_
