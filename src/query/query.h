#ifndef LQO_QUERY_QUERY_H_
#define LQO_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/predicate.h"

namespace lqo {

/// Bitmask of query-table indices (bit i = Query::tables[i]). Queries are
/// limited to 64 tables, far above anything in the workloads.
using TableSet = uint64_t;

inline TableSet TableBit(int index) { return TableSet{1} << index; }
inline bool ContainsTable(TableSet set, int index) {
  return (set & TableBit(index)) != 0;
}
inline int PopCount(TableSet set) { return __builtin_popcountll(set); }

/// One FROM-clause entry.
struct QueryTable {
  std::string table_name;
  std::string alias;
};

/// An equi-join conjunct between two query tables.
struct QueryJoin {
  int left_table = 0;
  std::string left_column;
  int right_table = 0;
  std::string right_column;

  /// True if the join connects a table inside `set` with one outside it, or
  /// both inside.
  bool WithinSet(TableSet set) const {
    return ContainsTable(set, left_table) && ContainsTable(set, right_table);
  }
};

/// Aggregate functions of the output stage (int64 columns; AVG is the
/// truncated integer quotient SUM/COUNT).
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc func);

/// One SELECT-list item: either a bare column reference (projection) or an
/// aggregate over a column. COUNT(*) is the aggregate form with no column
/// (table_index == -1).
struct OutputExpr {
  enum class Kind { kColumn, kAggregate };

  Kind kind = Kind::kAggregate;
  AggFunc func = AggFunc::kCount;  // meaningful for kAggregate only.
  int table_index = -1;            // -1 only for COUNT(*).
  std::string column;              // empty only for COUNT(*).

  static OutputExpr CountStar() { return OutputExpr{}; }
  static OutputExpr Column(int table_index, std::string column) {
    return {Kind::kColumn, AggFunc::kCount, table_index, std::move(column)};
  }
  static OutputExpr Aggregate(AggFunc func, int table_index,
                              std::string column) {
    return {Kind::kAggregate, func, table_index, std::move(column)};
  }

  /// True when the expression reads a column (everything but COUNT(*)).
  bool ReferencesColumn() const { return table_index >= 0; }
};

/// A select-project-join query: the unit of work throughout the library,
/// matching the query class used by the cardinality-estimation and
/// learned-optimizer literature the paper surveys. The select list defaults
/// to the literature's COUNT(*) (an empty `outputs()`); adding OutputExprs
/// and an optional single GROUP BY key turns on the engine's
/// late-materialization output stage without changing the qualifying-row
/// semantics any estimator or optimizer depends on.
class Query {
 public:
  Query() = default;

  /// Adds a FROM entry; returns its index. Alias defaults to t<i>.
  int AddTable(const std::string& table_name, std::string alias = "");

  void AddJoin(int left_table, const std::string& left_column,
               int right_table, const std::string& right_column);
  void AddPredicate(Predicate predicate);

  /// Appends a SELECT-list item. An empty select list means the legacy
  /// SELECT COUNT(*) — callers that never touch outputs see no change.
  void AddOutput(OutputExpr output);

  /// Sets the (single) GROUP BY key. Aggregate outputs then aggregate per
  /// key; kColumn outputs must reference this column.
  void SetGroupBy(int table_index, std::string column);

  const std::vector<QueryTable>& tables() const { return tables_; }
  const std::vector<QueryJoin>& joins() const { return joins_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }
  const std::vector<OutputExpr>& outputs() const { return outputs_; }
  bool has_group_by() const { return has_group_by_; }
  int group_by_table() const { return group_by_table_; }
  const std::string& group_by_column() const { return group_by_column_; }

  /// True when the query declares an explicit output stage (non-empty
  /// select list); false for legacy COUNT(*) queries.
  bool HasOutputStage() const { return !outputs_.empty(); }

  /// Distinct columns of `table_index` the output stage reads (select list
  /// plus GROUP BY key), in first-reference order.
  std::vector<std::string> OutputColumnsOf(int table_index) const;

  int num_tables() const { return static_cast<int>(tables_.size()); }

  /// Mask with all query tables set.
  TableSet AllTables() const;

  /// Predicates whose table_index == `table_index`.
  std::vector<Predicate> PredicatesOf(int table_index) const;

  /// Joins with both endpoints inside `set`.
  std::vector<QueryJoin> JoinsWithin(TableSet set) const;

  /// Adjacency over the join graph: tables (by index) sharing a join with
  /// `table_index`.
  std::vector<int> Neighbors(int table_index) const;

  /// True if the join graph restricted to `set` is connected.
  bool IsConnected(TableSet set) const;

  /// SQL-ish rendering for logs and docs.
  std::string ToString() const;

 private:
  std::vector<QueryTable> tables_;
  std::vector<QueryJoin> joins_;
  std::vector<Predicate> predicates_;
  std::vector<OutputExpr> outputs_;
  bool has_group_by_ = false;
  int group_by_table_ = -1;
  std::string group_by_column_;
};

/// A view of a query restricted to a connected subset of its tables — the
/// "sub-query Q' of Q" whose cardinality the estimator component predicts.
struct Subquery {
  const Query* query = nullptr;
  TableSet tables = 0;

  /// Canonical cache key: identical logical subqueries (same base tables,
  /// predicates and join structure) map to the same key even across Query
  /// objects.
  std::string Key() const;

  /// 64-bit structural hash of Key() — same canonicalization (neutralized
  /// table indices, order-independent predicate/join combination) without
  /// materializing any strings, so hot cache lookups stay allocation-free.
  /// Equal Key() implies equal KeyHash(); collisions between distinct keys
  /// are possible in principle but vanishingly rare at 64 bits.
  uint64_t KeyHash() const;
};

}  // namespace lqo

#endif  // LQO_QUERY_QUERY_H_
