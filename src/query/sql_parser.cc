#include "query/sql_parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <vector>

#include "common/str_util.h"

namespace lqo {
namespace {

enum class TokenKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier (lowercased for keywords on demand),
                      // symbol text, or string contents.
  int64_t number = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '\'') {
        size_t end = input_.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated string literal");
        }
        tokens.push_back(
            {TokenKind::kString, input_.substr(i + 1, end - i - 1), 0});
        i = end + 1;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t j = i + 1;
        while (j < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[j]))) {
          ++j;
        }
        Token t;
        t.kind = TokenKind::kNumber;
        t.text = input_.substr(i, j - i);
        t.number = std::stoll(t.text);
        tokens.push_back(t);
        i = j;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i + 1;
        while (j < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                input_[j] == '_')) {
          ++j;
        }
        tokens.push_back({TokenKind::kIdent, input_.substr(i, j - i), 0});
        i = j;
        continue;
      }
      // Multi-char symbols: <= >= <>
      if ((c == '<' || c == '>') && i + 1 < input_.size() &&
          input_[i + 1] == '=') {
        tokens.push_back({TokenKind::kSymbol, input_.substr(i, 2), 0});
        i += 2;
        continue;
      }
      static const std::string kSingles = "=<>(),.*;";
      if (kSingles.find(c) != std::string::npos) {
        tokens.push_back({TokenKind::kSymbol, std::string(1, c), 0});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in SQL");
    }
    tokens.push_back({TokenKind::kEnd, "", 0});
    return tokens;
  }

 private:
  const std::string& input_;
};

class Parser {
 public:
  Parser(const Catalog& catalog, std::vector<Token> tokens)
      : catalog_(catalog), tokens_(std::move(tokens)) {}

  StatusOr<Query> Parse() {
    LQO_RETURN_IF_ERROR(ExpectKeyword("select"));
    // Select-list items are collected as raw tokens here — aliases are not
    // known until the FROM list is parsed — and resolved right after it.
    LQO_RETURN_IF_ERROR(ParseSelectList());
    LQO_RETURN_IF_ERROR(ExpectKeyword("from"));
    LQO_RETURN_IF_ERROR(ParseFromList());
    LQO_RETURN_IF_ERROR(ResolveSelectList());
    if (IsKeyword(Peek(), "where")) {
      Advance();
      LQO_RETURN_IF_ERROR(ParseCondition());
      while (IsKeyword(Peek(), "and")) {
        Advance();
        LQO_RETURN_IF_ERROR(ParseCondition());
      }
    }
    if (IsKeyword(Peek(), "group")) {
      Advance();
      LQO_RETURN_IF_ERROR(ExpectKeyword("by"));
      auto key_or = ParseColumnRef();
      if (!key_or.ok()) return key_or.status();
      // GROUP BY turns a bare COUNT(*) select list into an explicit
      // per-group output stage.
      if (!query_.HasOutputStage()) {
        query_.AddOutput(OutputExpr::CountStar());
      }
      query_.SetGroupBy(key_or->table_index, key_or->column);
    }
    if (Peek().kind == TokenKind::kSymbol && Peek().text == ";") Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing tokens after query: '" +
                                     Peek().text + "'");
    }
    if (!query_.IsConnected(query_.AllTables()) && query_.num_tables() > 1) {
      return Status::InvalidArgument(
          "query join graph is not connected (cross products unsupported)");
    }
    return std::move(query_);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }

  static bool IsKeyword(const Token& t, const std::string& kw) {
    return t.kind == TokenKind::kIdent && AsciiLower(t.text) == kw;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!IsKeyword(Peek(), kw)) {
      return Status::InvalidArgument("expected '" + kw + "', got '" +
                                     Peek().text + "'");
    }
    Advance();
    return Status::Ok();
  }

  Status ExpectSymbol(const std::string& sym) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text != sym) {
      return Status::InvalidArgument("expected '" + sym + "', got '" +
                                     Peek().text + "'");
    }
    Advance();
    return Status::Ok();
  }

  /// One select-list item captured as raw tokens; aliases are resolved
  /// against the FROM list after it has been parsed.
  struct RawSelectItem {
    bool count_star = false;
    bool is_aggregate = false;
    AggFunc func = AggFunc::kCount;
    std::string alias;
    std::string column;
  };

  static bool AggFuncFromName(const std::string& name, AggFunc* out) {
    if (name == "count") { *out = AggFunc::kCount; return true; }
    if (name == "sum") { *out = AggFunc::kSum; return true; }
    if (name == "min") { *out = AggFunc::kMin; return true; }
    if (name == "max") { *out = AggFunc::kMax; return true; }
    if (name == "avg") { *out = AggFunc::kAvg; return true; }
    return false;
  }

  Status ParseRawColumn(std::string* alias, std::string* column) {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected alias.column in select list");
    }
    *alias = Peek().text;
    Advance();
    LQO_RETURN_IF_ERROR(ExpectSymbol("."));
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected column after '" + *alias +
                                     ".'");
    }
    *column = Peek().text;
    Advance();
    return Status::Ok();
  }

  Status ParseSelectList() {
    while (true) {
      RawSelectItem item;
      AggFunc func = AggFunc::kCount;
      if (IsKeyword(Peek(), "count") && Peek(1).kind == TokenKind::kSymbol &&
          Peek(1).text == "(" && Peek(2).kind == TokenKind::kSymbol &&
          Peek(2).text == "*") {
        Advance();  // count
        Advance();  // (
        Advance();  // *
        LQO_RETURN_IF_ERROR(ExpectSymbol(")"));
        item.count_star = true;
      } else if (Peek().kind == TokenKind::kIdent &&
                 AggFuncFromName(AsciiLower(Peek().text), &func) &&
                 Peek(1).kind == TokenKind::kSymbol && Peek(1).text == "(") {
        Advance();
        LQO_RETURN_IF_ERROR(ExpectSymbol("("));
        LQO_RETURN_IF_ERROR(ParseRawColumn(&item.alias, &item.column));
        LQO_RETURN_IF_ERROR(ExpectSymbol(")"));
        item.is_aggregate = true;
        item.func = func;
      } else {
        LQO_RETURN_IF_ERROR(ParseRawColumn(&item.alias, &item.column));
      }
      select_items_.push_back(std::move(item));
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      return Status::Ok();
    }
  }

  /// Resolves the buffered select list. A list of exactly one bare COUNT(*)
  /// stays the legacy cardinality-only query (empty outputs) so every
  /// existing caller parses to a byte-identical Query; GROUP BY later
  /// promotes it to an explicit output stage.
  Status ResolveSelectList() {
    if (select_items_.size() == 1 && select_items_[0].count_star) {
      return Status::Ok();
    }
    for (const RawSelectItem& item : select_items_) {
      if (item.count_star) {
        query_.AddOutput(OutputExpr::CountStar());
        continue;
      }
      auto it = alias_to_index_.find(item.alias);
      if (it == alias_to_index_.end()) {
        return Status::NotFound("unknown alias '" + item.alias +
                                "' in select list");
      }
      const Table& table = *TableOf(it->second);
      if (!table.HasColumn(item.column)) {
        return Status::NotFound("no column '" + item.column + "' in '" +
                                table.name() + "'");
      }
      if (item.is_aggregate) {
        query_.AddOutput(
            OutputExpr::Aggregate(item.func, it->second, item.column));
      } else {
        query_.AddOutput(OutputExpr::Column(it->second, item.column));
      }
    }
    return Status::Ok();
  }

  Status ParseFromList() {
    while (true) {
      if (Peek().kind != TokenKind::kIdent) {
        return Status::InvalidArgument("expected table name");
      }
      std::string table = Peek().text;
      Advance();
      if (!catalog_.HasTable(table)) {
        return Status::NotFound("unknown table '" + table + "'");
      }
      std::string alias = table;
      if (Peek().kind == TokenKind::kIdent && !IsKeyword(Peek(), "where") &&
          !IsKeyword(Peek(), "group")) {
        alias = Peek().text;
        Advance();
      }
      if (alias_to_index_.count(alias) > 0) {
        return Status::InvalidArgument("duplicate alias '" + alias + "'");
      }
      alias_to_index_[alias] = query_.AddTable(table, alias);
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      return Status::Ok();
    }
  }

  struct ColumnRefToken {
    int table_index;
    std::string column;
  };

  StatusOr<ColumnRefToken> ParseColumnRef() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected alias.column");
    }
    std::string alias = Peek().text;
    Advance();
    LQO_RETURN_IF_ERROR(ExpectSymbol("."));
    if (Peek().kind != TokenKind::kIdent) {
      return Status::InvalidArgument("expected column after '" + alias + ".'");
    }
    std::string column = Peek().text;
    Advance();
    auto it = alias_to_index_.find(alias);
    if (it == alias_to_index_.end()) {
      return Status::NotFound("unknown alias '" + alias + "'");
    }
    const Table& table = *TableOf(it->second);
    if (!table.HasColumn(column)) {
      return Status::NotFound("no column '" + column + "' in '" +
                              table.name() + "'");
    }
    return ColumnRefToken{it->second, column};
  }

  const Table* TableOf(int index) {
    return catalog_
        .GetTable(query_.tables()[static_cast<size_t>(index)].table_name)
        .value();
  }

  // Resolves a literal token against a column: numbers pass through; strings
  // are mapped with dictionary lower_bound semantics so range comparisons on
  // strings work (`exact` reports whether the string was present).
  StatusOr<int64_t> ResolveLiteral(const ColumnRefToken& ref,
                                   const Token& token) {
    const Column& col = *ColumnOf(ref);
    if (token.kind == TokenKind::kNumber) return token.number;
    if (token.kind == TokenKind::kString) {
      if (col.type != ColumnType::kCategorical) {
        return Status::InvalidArgument("string literal on numeric column '" +
                                       ref.column + "'");
      }
      auto it = std::lower_bound(col.dictionary.begin(), col.dictionary.end(),
                                 token.text);
      return static_cast<int64_t>(it - col.dictionary.begin());
    }
    return Status::InvalidArgument("expected literal, got '" + token.text +
                                   "'");
  }

  const Column* ColumnOf(const ColumnRefToken& ref) {
    const Table& table = *TableOf(ref.table_index);
    return &table.column(table.ColumnIndex(ref.column).value());
  }

  Status ParseCondition() {
    auto left_or = ParseColumnRef();
    if (!left_or.ok()) return left_or.status();
    ColumnRefToken left = *left_or;

    if (IsKeyword(Peek(), "between")) {
      Advance();
      auto lo_or = ResolveLiteral(left, Peek());
      if (!lo_or.ok()) return lo_or.status();
      Advance();
      LQO_RETURN_IF_ERROR(ExpectKeyword("and"));
      auto hi_or = ResolveLiteral(left, Peek());
      if (!hi_or.ok()) return hi_or.status();
      Advance();
      query_.AddPredicate(
          Predicate::Range(left.table_index, left.column, *lo_or, *hi_or));
      return Status::Ok();
    }

    if (IsKeyword(Peek(), "in")) {
      Advance();
      LQO_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<int64_t> values;
      while (true) {
        auto v_or = ResolveLiteral(left, Peek());
        if (!v_or.ok()) return v_or.status();
        values.push_back(*v_or);
        Advance();
        if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
          Advance();
          continue;
        }
        break;
      }
      LQO_RETURN_IF_ERROR(ExpectSymbol(")"));
      query_.AddPredicate(
          Predicate::In(left.table_index, left.column, std::move(values)));
      return Status::Ok();
    }

    if (Peek().kind != TokenKind::kSymbol) {
      return Status::InvalidArgument("expected comparison operator");
    }
    std::string op = Peek().text;
    Advance();

    // Join condition: rhs is alias.column (ident '.' ident).
    if (op == "=" && Peek().kind == TokenKind::kIdent &&
        Peek(1).kind == TokenKind::kSymbol && Peek(1).text == ".") {
      auto right_or = ParseColumnRef();
      if (!right_or.ok()) return right_or.status();
      if (right_or->table_index == left.table_index) {
        return Status::InvalidArgument("self-join conditions unsupported");
      }
      query_.AddJoin(left.table_index, left.column, right_or->table_index,
                     right_or->column);
      return Status::Ok();
    }

    auto value_or = ResolveLiteral(left, Peek());
    if (!value_or.ok()) return value_or.status();
    Advance();
    int64_t v = *value_or;
    const Column& col = *ColumnOf(left);
    // One-sided comparisons become ranges anchored at the column bounds;
    // when the literal lies outside the bounds the range may be empty by
    // construction (lo adjusted so lo <= hi always holds).
    if (op == "=") {
      query_.AddPredicate(Predicate::Equals(left.table_index, left.column, v));
    } else if (op == "<") {
      query_.AddPredicate(Predicate::Range(
          left.table_index, left.column, std::min(col.min_value, v - 1),
          v - 1));
    } else if (op == "<=") {
      query_.AddPredicate(Predicate::Range(
          left.table_index, left.column, std::min(col.min_value, v), v));
    } else if (op == ">") {
      query_.AddPredicate(Predicate::Range(
          left.table_index, left.column, v + 1,
          std::max(col.max_value, v + 1)));
    } else if (op == ">=") {
      query_.AddPredicate(Predicate::Range(
          left.table_index, left.column, v, std::max(col.max_value, v)));
    } else {
      return Status::InvalidArgument("unsupported operator '" + op + "'");
    }
    return Status::Ok();
  }

  const Catalog& catalog_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Query query_;
  std::vector<RawSelectItem> select_items_;
  std::map<std::string, int> alias_to_index_;
};

}  // namespace

StatusOr<Query> ParseSql(const Catalog& catalog, const std::string& sql) {
  Lexer lexer(sql);
  auto tokens_or = lexer.Tokenize();
  if (!tokens_or.ok()) return tokens_or.status();
  Parser parser(catalog, std::move(*tokens_or));
  return parser.Parse();
}

}  // namespace lqo
