#include "query/query.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace lqo {

int Query::AddTable(const std::string& table_name, std::string alias) {
  LQO_CHECK_LT(tables_.size(), 64u) << "query table limit exceeded";
  if (alias.empty()) alias = "t" + std::to_string(tables_.size());
  tables_.push_back({table_name, std::move(alias)});
  return static_cast<int>(tables_.size()) - 1;
}

void Query::AddJoin(int left_table, const std::string& left_column,
                    int right_table, const std::string& right_column) {
  LQO_CHECK_GE(left_table, 0);
  LQO_CHECK_LT(left_table, num_tables());
  LQO_CHECK_GE(right_table, 0);
  LQO_CHECK_LT(right_table, num_tables());
  LQO_CHECK_NE(left_table, right_table);
  joins_.push_back({left_table, left_column, right_table, right_column});
}

void Query::AddPredicate(Predicate predicate) {
  LQO_CHECK_GE(predicate.table_index, 0);
  LQO_CHECK_LT(predicate.table_index, num_tables());
  predicates_.push_back(std::move(predicate));
}

void Query::AddOutput(OutputExpr output) {
  if (output.ReferencesColumn()) {
    LQO_CHECK_LT(output.table_index, num_tables());
    LQO_CHECK(!output.column.empty());
  } else {
    // Only COUNT(*) reads no column.
    LQO_CHECK(output.kind == OutputExpr::Kind::kAggregate);
    LQO_CHECK(output.func == AggFunc::kCount);
  }
  outputs_.push_back(std::move(output));
}

void Query::SetGroupBy(int table_index, std::string column) {
  LQO_CHECK_GE(table_index, 0);
  LQO_CHECK_LT(table_index, num_tables());
  LQO_CHECK(!column.empty());
  has_group_by_ = true;
  group_by_table_ = table_index;
  group_by_column_ = std::move(column);
}

std::vector<std::string> Query::OutputColumnsOf(int table_index) const {
  std::vector<std::string> cols;
  auto add = [&](const std::string& c) {
    if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
      cols.push_back(c);
    }
  };
  if (has_group_by_ && group_by_table_ == table_index) add(group_by_column_);
  for (const OutputExpr& o : outputs_) {
    if (o.ReferencesColumn() && o.table_index == table_index) add(o.column);
  }
  return cols;
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

TableSet Query::AllTables() const {
  if (tables_.empty()) return 0;
  if (tables_.size() == 64) return ~TableSet{0};
  return (TableSet{1} << tables_.size()) - 1;
}

std::vector<Predicate> Query::PredicatesOf(int table_index) const {
  std::vector<Predicate> result;
  for (const Predicate& p : predicates_) {
    if (p.table_index == table_index) result.push_back(p);
  }
  return result;
}

std::vector<QueryJoin> Query::JoinsWithin(TableSet set) const {
  std::vector<QueryJoin> result;
  for (const QueryJoin& j : joins_) {
    if (j.WithinSet(set)) result.push_back(j);
  }
  return result;
}

std::vector<int> Query::Neighbors(int table_index) const {
  std::vector<int> result;
  for (const QueryJoin& j : joins_) {
    if (j.left_table == table_index) result.push_back(j.right_table);
    if (j.right_table == table_index) result.push_back(j.left_table);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

bool Query::IsConnected(TableSet set) const {
  if (set == 0) return false;
  // BFS from the lowest set bit over joins restricted to `set`.
  int start = __builtin_ctzll(set);
  TableSet visited = TableBit(start);
  std::vector<int> frontier = {start};
  while (!frontier.empty()) {
    int t = frontier.back();
    frontier.pop_back();
    for (const QueryJoin& j : joins_) {
      int other = -1;
      if (j.left_table == t && ContainsTable(set, j.right_table)) {
        other = j.right_table;
      } else if (j.right_table == t && ContainsTable(set, j.left_table)) {
        other = j.left_table;
      }
      if (other >= 0 && !ContainsTable(visited, other)) {
        visited |= TableBit(other);
        frontier.push_back(other);
      }
    }
  }
  return visited == set;
}

std::string Query::ToString() const {
  std::ostringstream out;
  out << "SELECT ";
  if (outputs_.empty()) {
    out << "COUNT(*)";
  } else {
    for (size_t i = 0; i < outputs_.size(); ++i) {
      if (i > 0) out << ", ";
      const OutputExpr& o = outputs_[i];
      if (o.kind == OutputExpr::Kind::kColumn) {
        out << tables_[static_cast<size_t>(o.table_index)].alias << "."
            << o.column;
      } else if (!o.ReferencesColumn()) {
        out << "COUNT(*)";
      } else {
        out << AggFuncName(o.func) << "("
            << tables_[static_cast<size_t>(o.table_index)].alias << "."
            << o.column << ")";
      }
    }
  }
  out << " FROM ";
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (i > 0) out << ", ";
    out << tables_[i].table_name << " " << tables_[i].alias;
  }
  bool first = true;
  auto conj = [&]() -> std::ostream& {
    out << (first ? " WHERE " : " AND ");
    first = false;
    return out;
  };
  for (const QueryJoin& j : joins_) {
    conj() << tables_[static_cast<size_t>(j.left_table)].alias << "."
           << j.left_column << " = "
           << tables_[static_cast<size_t>(j.right_table)].alias << "."
           << j.right_column;
  }
  for (const Predicate& p : predicates_) {
    const std::string& alias = tables_[static_cast<size_t>(p.table_index)].alias;
    switch (p.kind) {
      case PredicateKind::kEquals:
        conj() << alias << "." << p.column << " = " << p.value;
        break;
      case PredicateKind::kRange:
        conj() << alias << "." << p.column << " BETWEEN " << p.lo << " AND "
               << p.hi;
        break;
      case PredicateKind::kIn: {
        auto& stream = conj();
        stream << alias << "." << p.column << " IN (";
        for (size_t i = 0; i < p.in_values.size(); ++i) {
          if (i > 0) stream << ",";
          stream << p.in_values[i];
        }
        stream << ")";
        break;
      }
    }
  }
  if (has_group_by_) {
    out << " GROUP BY "
        << tables_[static_cast<size_t>(group_by_table_)].alias << "."
        << group_by_column_;
  }
  return out.str();
}

std::string Subquery::Key() const {
  LQO_CHECK(query != nullptr);
  // Serialize per-table (name + sorted predicate strings), sorted by table
  // name then alias index, plus induced joins with endpoints replaced by
  // table names.
  std::vector<std::string> table_parts;
  for (int t = 0; t < query->num_tables(); ++t) {
    if (!ContainsTable(tables, t)) continue;
    std::vector<std::string> preds;
    for (const Predicate& p : query->PredicatesOf(t)) {
      Predicate copy = p;
      copy.table_index = 0;  // neutralize index for cross-query identity.
      preds.push_back(copy.ToString());
    }
    std::sort(preds.begin(), preds.end());
    std::string part = query->tables()[static_cast<size_t>(t)].table_name + "{";
    for (const std::string& p : preds) part += p + ";";
    part += "}";
    table_parts.push_back(part);
  }
  std::sort(table_parts.begin(), table_parts.end());

  std::vector<std::string> join_parts;
  for (const QueryJoin& j : query->JoinsWithin(tables)) {
    std::string a =
        query->tables()[static_cast<size_t>(j.left_table)].table_name + "." +
        j.left_column;
    std::string b =
        query->tables()[static_cast<size_t>(j.right_table)].table_name + "." +
        j.right_column;
    if (b < a) std::swap(a, b);
    join_parts.push_back(a + "=" + b);
  }
  std::sort(join_parts.begin(), join_parts.end());

  std::string key;
  for (const std::string& p : table_parts) key += p + "|";
  key += "/";
  for (const std::string& p : join_parts) key += p + "|";
  return key;
}

namespace {

uint64_t MixHash(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t HashBytes(const std::string& s, uint64_t h) {
  for (char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;  // FNV-1a prime.
  }
  return h;
}

// Structural stand-in for Predicate::ToString() with a neutralized table
// index: same column, kind and payload hash equal.
uint64_t HashPredicate(const Predicate& p) {
  uint64_t h = HashBytes(p.column, 0xcbf29ce484222325ull);
  h = MixHash(h ^ (static_cast<uint64_t>(p.kind) + 0x9e37u));
  switch (p.kind) {
    case PredicateKind::kEquals:
      h = MixHash(h ^ static_cast<uint64_t>(p.value));
      break;
    case PredicateKind::kRange:
      h = MixHash(h ^ static_cast<uint64_t>(p.lo));
      h = MixHash(h ^ static_cast<uint64_t>(p.hi));
      break;
    case PredicateKind::kIn:
      // in_values is sorted ascending at construction, so sequential
      // chaining is canonical.
      for (int64_t v : p.in_values) h = MixHash(h ^ static_cast<uint64_t>(v));
      break;
  }
  return h;
}

}  // namespace

uint64_t Subquery::KeyHash() const {
  LQO_CHECK(query != nullptr);
  // Mirrors Key(): where Key() sorts serialized parts, the hash combines
  // per-part hashes commutatively (addition), which is order-independent
  // without ever sorting or allocating.
  uint64_t tables_hash = 0;
  for (int t = 0; t < query->num_tables(); ++t) {
    if (!ContainsTable(tables, t)) continue;
    const std::string& name =
        query->tables()[static_cast<size_t>(t)].table_name;
    uint64_t preds_hash = 0;
    for (const Predicate& p : query->PredicatesOf(t)) {
      preds_hash += MixHash(HashPredicate(p));
    }
    uint64_t part = HashBytes(name, 0xcbf29ce484222325ull);
    tables_hash += MixHash(part ^ MixHash(preds_hash + 0x517cc1b7u));
  }

  uint64_t joins_hash = 0;
  for (const QueryJoin& j : query->JoinsWithin(tables)) {
    uint64_t a = HashBytes(
        j.left_column,
        HashBytes(query->tables()[static_cast<size_t>(j.left_table)].table_name,
                  0xcbf29ce484222325ull) ^
            0x2eu);
    uint64_t b = HashBytes(
        j.right_column,
        HashBytes(
            query->tables()[static_cast<size_t>(j.right_table)].table_name,
            0xcbf29ce484222325ull) ^
            0x2eu);
    // Endpoint-symmetric, like the sorted "a=b" rendering in Key().
    joins_hash += MixHash((a ^ b) + MixHash(a + b));
  }
  return MixHash(tables_hash ^ MixHash(joins_hash + 0x85ebca6bu));
}

}  // namespace lqo
