#include "query/predicate.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace lqo {

Predicate Predicate::Equals(int table_index, std::string column,
                            int64_t value) {
  Predicate p;
  p.table_index = table_index;
  p.column = std::move(column);
  p.kind = PredicateKind::kEquals;
  p.value = value;
  return p;
}

Predicate Predicate::Range(int table_index, std::string column, int64_t lo,
                           int64_t hi) {
  LQO_CHECK_LE(lo, hi);
  Predicate p;
  p.table_index = table_index;
  p.column = std::move(column);
  p.kind = PredicateKind::kRange;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate Predicate::In(int table_index, std::string column,
                        std::vector<int64_t> values) {
  LQO_CHECK(!values.empty());
  Predicate p;
  p.table_index = table_index;
  p.column = std::move(column);
  p.kind = PredicateKind::kIn;
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  p.in_values = std::move(values);
  return p;
}

bool Predicate::Matches(int64_t v) const {
  switch (kind) {
    case PredicateKind::kEquals:
      return v == value;
    case PredicateKind::kRange:
      return v >= lo && v <= hi;
    case PredicateKind::kIn:
      return std::binary_search(in_values.begin(), in_values.end(), v);
  }
  return false;
}

std::string Predicate::ToString() const {
  std::ostringstream out;
  out << "t" << table_index << "." << column;
  switch (kind) {
    case PredicateKind::kEquals:
      out << " = " << value;
      break;
    case PredicateKind::kRange:
      out << " in [" << lo << "," << hi << "]";
      break;
    case PredicateKind::kIn: {
      out << " IN (";
      for (size_t i = 0; i < in_values.size(); ++i) {
        if (i > 0) out << ",";
        out << in_values[i];
      }
      out << ")";
      break;
    }
  }
  return out.str();
}

}  // namespace lqo
