#include "pilotscope/drivers.h"

#include <set>

#include "common/logging.h"
#include "costmodel/plan_featurizer.h"

namespace lqo {
namespace {

PlanExperience MakeExperience(const Query& query, const PhysicalPlan& plan,
                              double time_units) {
  PlanExperience experience;
  experience.query_key = Subquery{&query, query.AllTables()}.Key();
  experience.features = PlanFeaturizer::Featurize(plan);
  experience.time_units = time_units;
  experience.plan_signature = plan.Signature();
  return experience;
}

}  // namespace

CardinalityDriver::CardinalityDriver(CardinalityEstimatorInterface* estimator)
    : estimator_(estimator) {
  LQO_CHECK(estimator_ != nullptr);
}

Status CardinalityDriver::Init(DbInteractor* interactor) {
  if (interactor == nullptr) {
    return Status::InvalidArgument("null interactor");
  }
  interactor_ = interactor;
  return Status::Ok();
}

StatusOr<ExecutionResult> CardinalityDriver::Algo(const Query& query) {
  if (interactor_ == nullptr) {
    return Status::FailedPrecondition("driver not initialized");
  }
  // Batch-inject the learned estimates for all optimizer sub-queries.
  auto subqueries = interactor_->PullSubqueries(query);
  if (!subqueries.ok()) return subqueries.status();
  LQO_RETURN_IF_ERROR(interactor_->ClearPushes());
  for (const Subquery& subquery : *subqueries) {
    LQO_RETURN_IF_ERROR(interactor_->PushCardinalityOverride(
        subquery.Key(), estimator_->EstimateSubquery(subquery)));
  }
  auto plan = interactor_->PullPlan(query);
  if (!plan.ok()) return plan.status();
  LQO_RETURN_IF_ERROR(interactor_->ClearPushes());
  return interactor_->PullExecution(*plan);
}

StatusOr<PhysicalPlan> CardinalityDriver::PlanQuery(const Query& query) {
  if (interactor_ == nullptr) {
    return Status::FailedPrecondition("driver not initialized");
  }
  auto subqueries = interactor_->PullSubqueries(query);
  if (!subqueries.ok()) return subqueries.status();
  LQO_RETURN_IF_ERROR(interactor_->ClearPushes());
  for (const Subquery& subquery : *subqueries) {
    LQO_RETURN_IF_ERROR(interactor_->PushCardinalityOverride(
        subquery.Key(), estimator_->EstimateSubquery(subquery)));
  }
  auto plan = interactor_->PullPlan(query);
  if (!plan.ok()) return plan.status();
  LQO_RETURN_IF_ERROR(interactor_->ClearPushes());
  return plan;
}

std::string CardinalityDriver::Name() const {
  return "ce_driver(" + estimator_->Name() + ")";
}

BaoDriver::BaoDriver(int retrain_every) : retrain_every_(retrain_every) {}

Status BaoDriver::Init(DbInteractor* interactor) {
  if (interactor == nullptr) {
    return Status::InvalidArgument("null interactor");
  }
  interactor_ = interactor;
  return Status::Ok();
}

StatusOr<std::vector<PhysicalPlan>> BaoDriver::Candidates(const Query& query) {
  std::vector<PhysicalPlan> candidates;
  std::set<std::string> seen;
  for (int mask : {7, 1, 2, 3, 4, 5, 6}) {
    HintSet hints;
    hints.enable_hash_join = (mask & 1) != 0;
    hints.enable_nested_loop = (mask & 2) != 0;
    hints.enable_merge_join = (mask & 4) != 0;
    LQO_RETURN_IF_ERROR(interactor_->PushHints(hints));
    auto plan = interactor_->PullPlan(query);
    if (!plan.ok()) return plan.status();
    if (seen.insert(plan->Signature()).second) {
      candidates.push_back(std::move(*plan));
    }
  }
  LQO_RETURN_IF_ERROR(interactor_->ClearPushes());
  return candidates;
}

StatusOr<ExecutionResult> BaoDriver::Algo(const Query& query) {
  if (interactor_ == nullptr) {
    return Status::FailedPrecondition("driver not initialized");
  }
  auto candidates = Candidates(query);
  if (!candidates.ok()) return candidates.status();
  size_t chosen = 0;
  if (risk_model_.trained() && candidates->size() > 1) {
    std::vector<std::vector<double>> features;
    for (const PhysicalPlan& plan : *candidates) {
      features.push_back(PlanFeaturizer::Featurize(plan));
    }
    chosen = risk_model_.PickBest(features);
  }
  auto result = interactor_->PullExecution((*candidates)[chosen]);
  if (!result.ok()) return result.status();
  experience_.Add(
      MakeExperience(query, (*candidates)[chosen], result->time_units));
  if (++since_retrain_ >= retrain_every_) {
    risk_model_.Train(experience_);
    since_retrain_ = 0;
  }
  return result;
}

StatusOr<PhysicalPlan> BaoDriver::PlanQuery(const Query& query) {
  if (interactor_ == nullptr) {
    return Status::FailedPrecondition("driver not initialized");
  }
  // The planning half of Algo: collect hint-set candidates and score them,
  // but neither execute nor learn — serving feedback goes to the plan
  // cache's drift detector, not the risk model.
  auto candidates = Candidates(query);
  if (!candidates.ok()) return candidates.status();
  size_t chosen = 0;
  if (risk_model_.trained() && candidates->size() > 1) {
    std::vector<std::vector<double>> features;
    for (const PhysicalPlan& plan : *candidates) {
      features.push_back(PlanFeaturizer::Featurize(plan));
    }
    chosen = risk_model_.PickBest(features);
  }
  return std::move((*candidates)[chosen]);
}

Status BaoDriver::TrainOnWorkload(const Workload& workload) {
  if (interactor_ == nullptr) {
    return Status::FailedPrecondition("driver not initialized");
  }
  for (const Query& query : workload.queries) {
    auto candidates = Candidates(query);
    if (!candidates.ok()) return candidates.status();
    for (const PhysicalPlan& plan : *candidates) {
      auto result = interactor_->PullExecution(plan);
      if (!result.ok()) return result.status();
      experience_.Add(MakeExperience(query, plan, result->time_units));
    }
  }
  risk_model_.Train(experience_);
  return Status::Ok();
}

LeroDriver::LeroDriver(std::vector<double> scale_factors)
    : scale_factors_(std::move(scale_factors)) {}

Status LeroDriver::Init(DbInteractor* interactor) {
  if (interactor == nullptr) {
    return Status::InvalidArgument("null interactor");
  }
  interactor_ = interactor;
  return Status::Ok();
}

StatusOr<std::vector<PhysicalPlan>> LeroDriver::Candidates(
    const Query& query) {
  std::vector<PhysicalPlan> candidates;
  std::set<std::string> seen;
  LQO_RETURN_IF_ERROR(interactor_->ClearPushes());
  auto native = interactor_->PullPlan(query);
  if (!native.ok()) return native.status();
  seen.insert(native->Signature());
  candidates.push_back(std::move(*native));
  for (double factor : scale_factors_) {
    if (factor == 1.0) continue;
    LQO_RETURN_IF_ERROR(interactor_->PushCardinalityScale(factor, 2));
    auto plan = interactor_->PullPlan(query);
    if (!plan.ok()) return plan.status();
    LQO_RETURN_IF_ERROR(interactor_->ClearPushes());
    if (seen.insert(plan->Signature()).second) {
      candidates.push_back(std::move(*plan));
    }
  }
  return candidates;
}

StatusOr<ExecutionResult> LeroDriver::Algo(const Query& query) {
  if (interactor_ == nullptr) {
    return Status::FailedPrecondition("driver not initialized");
  }
  auto candidates = Candidates(query);
  if (!candidates.ok()) return candidates.status();
  size_t chosen = 0;
  if (risk_model_.trained() && candidates->size() > 1) {
    std::vector<std::vector<double>> features;
    for (const PhysicalPlan& plan : *candidates) {
      features.push_back(PlanFeaturizer::Featurize(plan));
    }
    chosen = risk_model_.PickBest(features);
  }
  auto result = interactor_->PullExecution((*candidates)[chosen]);
  if (!result.ok()) return result.status();
  experience_.Add(
      MakeExperience(query, (*candidates)[chosen], result->time_units));
  return result;
}

StatusOr<PhysicalPlan> LeroDriver::PlanQuery(const Query& query) {
  if (interactor_ == nullptr) {
    return Status::FailedPrecondition("driver not initialized");
  }
  auto candidates = Candidates(query);
  if (!candidates.ok()) return candidates.status();
  size_t chosen = 0;
  if (risk_model_.trained() && candidates->size() > 1) {
    std::vector<std::vector<double>> features;
    for (const PhysicalPlan& plan : *candidates) {
      features.push_back(PlanFeaturizer::Featurize(plan));
    }
    chosen = risk_model_.PickBest(features);
  }
  return std::move((*candidates)[chosen]);
}

Status LeroDriver::TrainOnWorkload(const Workload& workload) {
  if (interactor_ == nullptr) {
    return Status::FailedPrecondition("driver not initialized");
  }
  for (const Query& query : workload.queries) {
    auto candidates = Candidates(query);
    if (!candidates.ok()) return candidates.status();
    for (const PhysicalPlan& plan : *candidates) {
      auto result = interactor_->PullExecution(plan);
      if (!result.ok()) return result.status();
      experience_.Add(MakeExperience(query, plan, result->time_units));
    }
  }
  risk_model_.Train(experience_);
  return Status::Ok();
}

DriverPlanProducer::DriverPlanProducer(Driver* driver) : driver_(driver) {
  LQO_CHECK(driver_ != nullptr);
}

StatusOr<PhysicalPlan> DriverPlanProducer::Plan(const Query& query) {
  return driver_->PlanQuery(query);
}

std::string DriverPlanProducer::Name() const { return driver_->Name(); }

}  // namespace lqo
