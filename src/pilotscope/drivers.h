#ifndef LQO_PILOTSCOPE_DRIVERS_H_
#define LQO_PILOTSCOPE_DRIVERS_H_

#include <memory>
#include <vector>

#include "e2e/risk_models.h"
#include "optimizer/cardinality_interface.h"
#include "pilotscope/driver.h"
#include "serving/front_end.h"

namespace lqo {

/// The learned-cardinality-estimator driver of the paper's demonstration:
/// for each query it pulls the optimizer's sub-queries, computes estimates
/// with *any* CardinalityEstimatorInterface, pushes them in one batch, and
/// pulls plan + execution. The same driver supports every estimator in
/// src/cardinality.
class CardinalityDriver : public Driver {
 public:
  /// The estimator must be trained/built by the caller and outlive the
  /// driver.
  explicit CardinalityDriver(CardinalityEstimatorInterface* estimator);

  Status Init(DbInteractor* interactor) override;
  StatusOr<ExecutionResult> Algo(const Query& query) override;
  StatusOr<PhysicalPlan> PlanQuery(const Query& query) override;
  std::string Name() const override;

 private:
  CardinalityEstimatorInterface* estimator_;
  DbInteractor* interactor_ = nullptr;
};

/// The Bao driver of the demonstration: pushes operator hint sets to
/// collect candidate plans, scores them with a learned latency model, and
/// executes the winner; every executed query is also a training sample.
class BaoDriver : public Driver {
 public:
  explicit BaoDriver(int retrain_every = 25);

  Status Init(DbInteractor* interactor) override;
  StatusOr<ExecutionResult> Algo(const Query& query) override;
  StatusOr<PhysicalPlan> PlanQuery(const Query& query) override;
  Status TrainOnWorkload(const Workload& workload) override;
  std::string Name() const override { return "bao_driver"; }

  bool trained() const { return risk_model_.trained(); }

 private:
  StatusOr<std::vector<PhysicalPlan>> Candidates(const Query& query);

  DbInteractor* interactor_ = nullptr;
  int retrain_every_;
  int since_retrain_ = 0;
  ExperienceBuffer experience_;
  PointwiseRiskModel risk_model_;
};

/// The Lero driver of the demonstration: pushes cardinality scales to
/// collect candidate plans and picks the pairwise-comparator winner.
class LeroDriver : public Driver {
 public:
  explicit LeroDriver(std::vector<double> scale_factors = {0.01, 0.1, 1.0,
                                                           10.0, 100.0});

  Status Init(DbInteractor* interactor) override;
  StatusOr<ExecutionResult> Algo(const Query& query) override;
  StatusOr<PhysicalPlan> PlanQuery(const Query& query) override;
  Status TrainOnWorkload(const Workload& workload) override;
  std::string Name() const override { return "lero_driver"; }

  bool trained() const { return risk_model_.trained(); }

 private:
  StatusOr<std::vector<PhysicalPlan>> Candidates(const Query& query);

  DbInteractor* interactor_ = nullptr;
  std::vector<double> scale_factors_;
  ExperienceBuffer experience_;
  PairwiseRiskModel risk_model_;
};

/// Adapts any PilotScope driver's PlanQuery to the serving front end, so
/// the middleware's drivers are servable like the e2e optimizers. Not
/// thread-safe: drivers hold per-session interactor state (pushed hints,
/// cardinality overrides), so the front end plans them serially.
class DriverPlanProducer : public PlanProducer {
 public:
  /// The driver must be Init()-ed by the caller and outlive the producer.
  explicit DriverPlanProducer(Driver* driver);

  StatusOr<PhysicalPlan> Plan(const Query& query) override;
  std::string Name() const override;

 private:
  Driver* driver_;
};

}  // namespace lqo

#endif  // LQO_PILOTSCOPE_DRIVERS_H_
