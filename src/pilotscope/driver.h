#ifndef LQO_PILOTSCOPE_DRIVER_H_
#define LQO_PILOTSCOPE_DRIVER_H_

#include <string>

#include "pilotscope/interactor.h"
#include "query/workload.h"

namespace lqo {

/// A PilotScope driver: one AI4DB task packaged behind the two-function
/// programming model of the paper — Init() prepares the driver and
/// declares its injection type; Algo() runs the AI4DB algorithm for one
/// query, steering the database exclusively through the interactor's
/// push/pull operators.
class Driver {
 public:
  virtual ~Driver() = default;

  /// Prepares the driver for the session.
  virtual Status Init(DbInteractor* interactor) = 0;

  /// Handles one user query end to end (replaces the database component
  /// this driver targets) and returns the execution result.
  virtual StatusOr<ExecutionResult> Algo(const Query& query) = 0;

  /// The plan this driver's Algo would execute for `query`, without
  /// executing it and without collecting experience — the planning half of
  /// Algo, split out so the serving front end can cache it per query type
  /// (src/serving). Drivers whose algorithm has no standalone planning step
  /// keep the default.
  virtual StatusOr<PhysicalPlan> PlanQuery(const Query& query) {
    (void)query;
    return Status::Unimplemented(Name() + " has no standalone planning step");
  }

  /// Optional background training over a collected workload (the paper's
  /// "collect the pre-defined training data ... then train each model").
  virtual Status TrainOnWorkload(const Workload& workload) {
    (void)workload;
    return Status::Ok();
  }

  virtual std::string Name() const = 0;
};

}  // namespace lqo

#endif  // LQO_PILOTSCOPE_DRIVER_H_
