#include "pilotscope/console.h"

#include "common/logging.h"
#include "query/sql_parser.h"

namespace lqo {

PilotScopeConsole::PilotScopeConsole(const Catalog* catalog,
                                     DbInteractor* interactor)
    : catalog_(catalog), interactor_(interactor) {
  LQO_CHECK(catalog_ != nullptr);
  LQO_CHECK(interactor_ != nullptr);
}

Status PilotScopeConsole::RegisterDriver(std::unique_ptr<Driver> driver) {
  LQO_CHECK(driver != nullptr);
  std::string name = driver->Name();
  if (drivers_.count(name) > 0) {
    return Status::InvalidArgument("driver '" + name + "' already registered");
  }
  LQO_RETURN_IF_ERROR(driver->Init(interactor_));
  drivers_.emplace(std::move(name), std::move(driver));
  return Status::Ok();
}

Status PilotScopeConsole::ActivateDriver(const std::string& name) {
  if (!name.empty() && drivers_.count(name) == 0) {
    return Status::NotFound("no driver '" + name + "' registered");
  }
  active_ = name;
  return Status::Ok();
}

std::vector<std::string> PilotScopeConsole::driver_names() const {
  std::vector<std::string> names;
  for (const auto& [name, driver] : drivers_) names.push_back(name);
  return names;
}

StatusOr<ExecutionResult> PilotScopeConsole::ExecuteSql(
    const std::string& sql) {
  auto query = ParseSql(*catalog_, sql);
  if (!query.ok()) return query.status();
  return ExecuteQuery(*query);
}

StatusOr<ExecutionResult> PilotScopeConsole::ExecuteQuery(const Query& query) {
  if (active_.empty()) {
    // Native path: plan and execute without any driver.
    LQO_RETURN_IF_ERROR(interactor_->ClearPushes());
    auto plan = interactor_->PullPlan(query);
    if (!plan.ok()) return plan.status();
    return interactor_->PullExecution(*plan);
  }
  return drivers_.at(active_)->Algo(query);
}

Status PilotScopeConsole::TrainActiveDriver(const Workload& workload) {
  if (active_.empty()) {
    return Status::FailedPrecondition("no active driver to train");
  }
  return drivers_.at(active_)->TrainOnWorkload(workload);
}

}  // namespace lqo
