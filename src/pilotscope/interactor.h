#ifndef LQO_PILOTSCOPE_INTERACTOR_H_
#define LQO_PILOTSCOPE_INTERACTOR_H_

#include <string>
#include <vector>

#include "engine/executor.h"
#include "optimizer/optimizer.h"

namespace lqo {

/// The DB-interactor interface of PilotScope [80]: a unified bridge that
/// shields drivers from the underlying database. It abstracts exactly two
/// operator families — *push* (enforce actions / inject data into the DB)
/// and *pull* (obtain data from the DB) — so a driver written against this
/// interface steers any database with an implementation of it.
class DbInteractor {
 public:
  virtual ~DbInteractor() = default;

  // --- push operators -------------------------------------------------

  /// Injects a cardinality for one sub-query (by canonical key).
  virtual Status PushCardinalityOverride(const std::string& subquery_key,
                                         double cardinality) = 0;
  /// Applies a multiplicative scale to sub-queries with >= min_tables.
  virtual Status PushCardinalityScale(double factor, int min_tables) = 0;
  /// Constrains the physical operators / join prefix.
  virtual Status PushHints(const HintSet& hints) = 0;
  /// Resets all pushed session state.
  virtual Status ClearPushes() = 0;

  // --- pull operators -------------------------------------------------

  /// Plan the optimizer would run under the current pushed state.
  virtual StatusOr<PhysicalPlan> PullPlan(const Query& query) = 0;
  /// Executes a plan and returns count + simulated latency.
  virtual StatusOr<ExecutionResult> PullExecution(const PhysicalPlan& plan) = 0;
  /// All connected sub-queries the optimizer will request cardinalities
  /// for (the batch interface of the learned-CE driver).
  virtual StatusOr<std::vector<Subquery>> PullSubqueries(
      const Query& query) = 0;
  /// The native estimator's cardinality for a sub-query.
  virtual StatusOr<double> PullEstimatedCardinality(
      const Subquery& subquery) = 0;

  // --- bookkeeping ----------------------------------------------------

  struct OpCounts {
    int pushes = 0;
    int pulls = 0;
  };
  const OpCounts& op_counts() const { return op_counts_; }
  void ResetOpCounts() { op_counts_ = OpCounts{}; }

 protected:
  void CountPush() { ++op_counts_.pushes; }
  void CountPull() { ++op_counts_.pulls; }

 private:
  OpCounts op_counts_;
};

/// The lqo-engine implementation of the DB interactor (the "lightweight
/// patch" a real deployment applies to the database kernel). Holds per-
/// session pushed state in a CardinalityProvider plus a hint slot.
class EngineInteractor : public DbInteractor {
 public:
  EngineInteractor(const Catalog* catalog, const Optimizer* optimizer,
                   CardinalityEstimatorInterface* estimator,
                   const Executor* executor);

  Status PushCardinalityOverride(const std::string& subquery_key,
                                 double cardinality) override;
  Status PushCardinalityScale(double factor, int min_tables) override;
  Status PushHints(const HintSet& hints) override;
  Status ClearPushes() override;

  StatusOr<PhysicalPlan> PullPlan(const Query& query) override;
  StatusOr<ExecutionResult> PullExecution(const PhysicalPlan& plan) override;
  StatusOr<std::vector<Subquery>> PullSubqueries(const Query& query) override;
  StatusOr<double> PullEstimatedCardinality(const Subquery& subquery) override;

  const Catalog& catalog() const { return *catalog_; }

 private:
  const Catalog* catalog_;
  const Optimizer* optimizer_;
  CardinalityEstimatorInterface* estimator_;
  const Executor* executor_;
  CardinalityProvider session_cards_;
  HintSet session_hints_;
};

}  // namespace lqo

#endif  // LQO_PILOTSCOPE_INTERACTOR_H_
