#ifndef LQO_PILOTSCOPE_CONSOLE_H_
#define LQO_PILOTSCOPE_CONSOLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pilotscope/driver.h"
#include "pilotscope/interactor.h"
#include "storage/catalog.h"

namespace lqo {

/// The PilotScope console: the single entry point the database user talks
/// to. It manages registered drivers and routes queries either to the
/// active driver (transparently — the user just submits SQL) or straight
/// to the native engine when no driver is active.
class PilotScopeConsole {
 public:
  /// `catalog` resolves SQL; `interactor` is the attached database.
  PilotScopeConsole(const Catalog* catalog, DbInteractor* interactor);

  /// Registers a driver under its Name(); initializes it against the
  /// interactor. Fails on duplicates.
  Status RegisterDriver(std::unique_ptr<Driver> driver);

  /// Activates one registered driver ("" deactivates: native execution).
  Status ActivateDriver(const std::string& name);

  const std::string& active_driver() const { return active_; }
  std::vector<std::string> driver_names() const;

  /// The database-user entry point: SQL in, COUNT(*) result out; whatever
  /// AI4DB driver is active runs transparently underneath.
  StatusOr<ExecutionResult> ExecuteSql(const std::string& sql);

  /// Same entry point for an already-built query object.
  StatusOr<ExecutionResult> ExecuteQuery(const Query& query);

  /// Runs the active driver's background training over a workload (data
  /// collection + model training phase of the PilotScope workflow).
  Status TrainActiveDriver(const Workload& workload);

  DbInteractor& interactor() { return *interactor_; }

 private:
  const Catalog* catalog_;
  DbInteractor* interactor_;
  std::map<std::string, std::unique_ptr<Driver>> drivers_;
  std::string active_;
};

}  // namespace lqo

#endif  // LQO_PILOTSCOPE_CONSOLE_H_
