#include "pilotscope/interactor.h"

#include "cardinality/training_data.h"
#include "common/logging.h"

namespace lqo {

EngineInteractor::EngineInteractor(const Catalog* catalog,
                                   const Optimizer* optimizer,
                                   CardinalityEstimatorInterface* estimator,
                                   const Executor* executor)
    : catalog_(catalog),
      optimizer_(optimizer),
      estimator_(estimator),
      executor_(executor),
      session_cards_(estimator) {
  LQO_CHECK(catalog_ != nullptr);
  LQO_CHECK(optimizer_ != nullptr);
  LQO_CHECK(estimator_ != nullptr);
  LQO_CHECK(executor_ != nullptr);
}

Status EngineInteractor::PushCardinalityOverride(
    const std::string& subquery_key, double cardinality) {
  if (cardinality < 0) {
    return Status::InvalidArgument("negative cardinality pushed");
  }
  CountPush();
  session_cards_.InjectOverride(subquery_key, cardinality);
  return Status::Ok();
}

Status EngineInteractor::PushCardinalityScale(double factor, int min_tables) {
  if (factor <= 0) return Status::InvalidArgument("scale must be positive");
  CountPush();
  session_cards_.SetScale(factor, min_tables);
  return Status::Ok();
}

Status EngineInteractor::PushHints(const HintSet& hints) {
  CountPush();
  session_hints_ = hints;
  return Status::Ok();
}

Status EngineInteractor::ClearPushes() {
  CountPush();
  session_cards_.ClearOverrides();
  session_hints_ = HintSet{};
  return Status::Ok();
}

StatusOr<PhysicalPlan> EngineInteractor::PullPlan(const Query& query) {
  CountPull();
  if (!query.IsConnected(query.AllTables())) {
    return Status::InvalidArgument("query join graph not connected");
  }
  return optimizer_->Optimize(query, &session_cards_, session_hints_).plan;
}

StatusOr<ExecutionResult> EngineInteractor::PullExecution(
    const PhysicalPlan& plan) {
  CountPull();
  return executor_->Execute(plan);
}

StatusOr<std::vector<Subquery>> EngineInteractor::PullSubqueries(
    const Query& query) {
  CountPull();
  std::vector<Subquery> subqueries;
  for (TableSet set : ConnectedSubsets(query)) {
    subqueries.push_back(Subquery{&query, set});
  }
  return subqueries;
}

StatusOr<double> EngineInteractor::PullEstimatedCardinality(
    const Subquery& subquery) {
  CountPull();
  return estimator_->EstimateSubquery(subquery);
}

}  // namespace lqo
