#include "e2e/framework.h"

#include "common/logging.h"

namespace lqo {

PhysicalPlan NativePlan(const E2eContext& context, const Query& query) {
  LQO_CHECK(context.optimizer != nullptr);
  CardinalityProvider cards(context.estimator);
  return context.optimizer->Optimize(query, &cards).plan;
}

void AnnotateWithBaseline(const E2eContext& context, PhysicalPlan* plan) {
  LQO_CHECK(plan != nullptr);
  CardinalityProvider cards(context.estimator);
  context.cost_model->PlanCost(plan, &cards);
}

void AnnotateWithProvider(const E2eContext& context, PhysicalPlan* plan,
                          CardinalityProvider* cards) {
  LQO_CHECK(plan != nullptr);
  LQO_CHECK(cards != nullptr);
  context.cost_model->PlanCost(plan, cards);
}

}  // namespace lqo
