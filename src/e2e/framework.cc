#include "e2e/framework.h"

#include "common/logging.h"

namespace lqo {

PhysicalPlan NativePlan(const E2eContext& context, const Query& query) {
  LQO_CHECK(context.optimizer != nullptr);
  CardinalityProvider cards(context.estimator);
  return context.optimizer->Optimize(query, &cards).plan;
}

void AnnotateWithBaseline(const E2eContext& context, PhysicalPlan* plan) {
  LQO_CHECK(plan != nullptr);
  CardinalityProvider cards(context.estimator);
  context.cost_model->PlanCost(plan, &cards);
}

void AnnotateWithProvider(const E2eContext& context, PhysicalPlan* plan,
                          CardinalityProvider* cards) {
  LQO_CHECK(plan != nullptr);
  LQO_CHECK(cards != nullptr);
  context.cost_model->PlanCost(plan, cards);
}

namespace {

// FNV-1a 64 over the plan's structure signature.
uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t PlanFeatureKey(const Query& query, const PhysicalPlan& plan) {
  uint64_t query_hash = Subquery{&query, query.AllTables()}.KeyHash();
  uint64_t plan_hash = Fnv1a64(plan.Signature());
  // Both inputs are well mixed; a xor-rotate combine keeps them from
  // cancelling when query and plan hashes correlate.
  uint64_t h = query_hash ^ (plan_hash + 0x9e3779b97f4a7c15ULL +
                             (query_hash << 6) + (query_hash >> 2));
  return h;
}

void FeaturizePlanCached(const E2eContext& context, const Query& query,
                         const PhysicalPlan& plan, bool annotated,
                         double* out) {
  FeatureCache* cache = context.feature_cache;
  if (cache == nullptr) {
    if (annotated) {
      PlanFeaturizer::FeaturizeInto(plan, out);
    } else {
      PhysicalPlan clone = plan.Clone();
      AnnotateWithBaseline(context, &clone);
      PlanFeaturizer::FeaturizeInto(clone, out);
    }
    return;
  }
  LQO_CHECK_EQ(cache->dim(), PlanFeaturizer::kDim);
  uint64_t key = PlanFeatureKey(query, plan);
  if (cache->Lookup(key, PlanFeaturizer::kVersion, out)) return;
  if (annotated) {
    PlanFeaturizer::FeaturizeInto(plan, out);
  } else {
    PhysicalPlan clone = plan.Clone();
    AnnotateWithBaseline(context, &clone);
    PlanFeaturizer::FeaturizeInto(clone, out);
  }
  cache->Insert(key, PlanFeaturizer::kVersion, out);
}

std::vector<double> FeaturizePlanCachedVec(const E2eContext& context,
                                           const Query& query,
                                           const PhysicalPlan& plan,
                                           bool annotated) {
  std::vector<double> features(PlanFeaturizer::kDim);
  FeaturizePlanCached(context, query, plan, annotated, features.data());
  return features;
}

}  // namespace lqo
