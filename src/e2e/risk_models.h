#ifndef LQO_E2E_RISK_MODELS_H_
#define LQO_E2E_RISK_MODELS_H_

#include <span>
#include <string>
#include <vector>

#include "e2e/framework.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"

namespace lqo {

/// Accumulates execution experience.
class ExperienceBuffer {
 public:
  void Add(PlanExperience experience) {
    records_.push_back(std::move(experience));
  }
  const std::vector<PlanExperience>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

 private:
  std::vector<PlanExperience> records_;
};

/// Pointwise risk model (Bao/Neo style): regress log latency from plan
/// features with a GBDT, pick the candidate with minimum prediction.
class PointwiseRiskModel {
 public:
  void Train(const ExperienceBuffer& buffer);
  double PredictTime(const std::vector<double>& features) const;
  /// Batch PredictTime over all rows of `x`; one GBDT PredictBatch pass
  /// followed by the scalar clamp/exp per row — bit-identical results.
  void PredictTimeBatch(const FeatureMatrix& x, std::span<double> out) const;
  /// Index of the best candidate (min predicted time).
  size_t PickBest(const std::vector<std::vector<double>>& candidates) const;
  /// Matrix variant: one batched inference pass over the candidate set,
  /// same argmin decision as the row-vector overload.
  size_t PickBest(const FeatureMatrix& candidates) const;
  /// Batched-inference counters of the underlying model.
  InferenceStatsSnapshot InferenceStats() const { return model_.Stats(); }
  bool trained() const { return trained_; }

 private:
  GradientBoostedTrees model_;
  bool trained_ = false;
};

/// Pairwise risk model (Lero/LEON style): learning-to-rank within a
/// query's candidate set. The per-query latency scale is removed by
/// training a scorer on log(time / fastest-in-group) — exactly the signal
/// plan pairs carry — with a tree-ensemble scorer whose bounded leaves make
/// the comparisons robust off-distribution; the comparator probability is
/// sigmoid over score differences (RankNet form).
class PairwiseRiskModel {
 public:
  explicit PairwiseRiskModel(uint64_t seed = 2001);

  /// Fits the scorer from within-query groups. No-op (stays untrained) if
  /// fewer than `min_pairs` comparable plans exist across groups.
  void Train(const ExperienceBuffer& buffer, double min_gap_ratio = 1.05,
             size_t min_pairs = 8);

  /// P(candidate a is faster than b).
  double CompareProba(const std::vector<double>& a,
                      const std::vector<double>& b) const;

  /// Index of the candidate winning the most pairwise comparisons.
  size_t PickBest(const std::vector<std::vector<double>>& candidates) const;

  /// Matrix variant: scores every candidate once with a single batched
  /// inference pass (O(n) scorer rows instead of the O(n^2) per-comparison
  /// Score calls of the row-vector overload), then replays the identical
  /// sigmoid-over-score-difference tournament.
  size_t PickBest(const FeatureMatrix& candidates) const;

  /// Conservative variant: returns PickBest's winner only if the model is
  /// at least `confidence` sure it beats candidates[baseline]; otherwise
  /// returns `baseline` (Lero's keep-the-native-plan-unless-confident
  /// behavior).
  size_t PickBestConservative(
      const std::vector<std::vector<double>>& candidates, size_t baseline,
      double confidence = 0.6) const;

  /// Matrix variant of PickBestConservative over a batched score pass.
  size_t PickBestConservative(const FeatureMatrix& candidates,
                              size_t baseline, double confidence = 0.6) const;

  /// Relative-latency scores for all rows of `x` (lower is better).
  void ScoreBatch(const FeatureMatrix& x, std::span<double> out) const;

  /// Tournament winner given precomputed per-candidate scores (one
  /// ScoreBatch row each). Callers that already hold the batch's scores
  /// (TrainingCandidateSet) replay the PickBest decision from them without
  /// a second inference pass.
  size_t PickBestFromScores(std::span<const double> scores) const;

  /// As PickBestConservative, from precomputed scores.
  size_t PickBestConservativeFromScores(std::span<const double> scores,
                                        size_t baseline,
                                        double confidence = 0.6) const;

  /// Batched-inference counters of the underlying scorer.
  InferenceStatsSnapshot InferenceStats() const { return scorer_.Stats(); }

  bool trained() const { return trained_; }

 private:
  /// Relative-latency score (log time over group minimum); lower is better.
  double Score(const std::vector<double>& features) const;

  uint64_t seed_;
  GradientBoostedTrees scorer_;
  bool trained_ = false;
};

}  // namespace lqo

#endif  // LQO_E2E_RISK_MODELS_H_
