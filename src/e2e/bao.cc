#include "e2e/bao.h"

#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

BaoOptimizer::BaoOptimizer(const E2eContext& context, BaoOptions options)
    : context_(context), options_(options), rng_(options.seed) {
  // Arms from the options; the default (everything enabled) comes first so
  // candidates[0] is always the native plan.
  LQO_CHECK(!options_.arm_masks.empty());
  LQO_CHECK_EQ(options_.arm_masks[0], 7) << "first Bao arm must be default";
  for (int mask : options_.arm_masks) {
    HintSet hints;
    hints.enable_hash_join = (mask & 1) != 0;
    hints.enable_nested_loop = (mask & 2) != 0;
    hints.enable_merge_join = (mask & 4) != 0;
    hints.name = std::string("arm_") + ((mask & 1) ? "h" : "") +
                 ((mask & 2) ? "n" : "") + ((mask & 4) ? "m" : "");
    arms_.push_back(hints);
  }
  arm_useful_.assign(arms_.size(), false);
}

std::vector<PhysicalPlan> BaoOptimizer::Candidates(const Query& query) {
  // Batched candidate costing: every arm plans against one frozen provider,
  // so the per-subquery estimates are derived once and shared concurrently
  // across arms instead of re-planned serially behind a private cache.
  CardinalityProvider cards(context_.estimator);
  cards.Freeze();
  std::vector<PhysicalPlan> plans =
      ParallelMap(arms_.size(), [&](size_t a) {
        PhysicalPlan plan =
            context_.optimizer->Optimize(query, &cards, arms_[a]).plan;
        AnnotateWithProvider(context_, &plan, &cards);
        return plan;
      });
  // Serial reduction in arm order: arm-usefulness bookkeeping and signature
  // dedup are order-dependent, so they stay a serial pass over the
  // index-addressed results (identical to the old one-arm-at-a-time walk).
  std::vector<PhysicalPlan> candidates;
  std::set<std::string> seen;
  std::string default_signature;
  for (size_t a = 0; a < arms_.size(); ++a) {
    std::string signature = plans[a].Signature();
    if (arms_[a].enable_hash_join && arms_[a].enable_nested_loop &&
        arms_[a].enable_merge_join) {
      default_signature = signature;
    } else if (!default_signature.empty() &&
               signature != default_signature) {
      arm_useful_[a] = true;
    }
    if (!seen.insert(signature).second) continue;
    candidates.push_back(std::move(plans[a]));
  }
  return candidates;
}

PhysicalPlan BaoOptimizer::ChoosePlan(const Query& query) {
  std::vector<PhysicalPlan> candidates = Candidates(query);
  LQO_CHECK(!candidates.empty());
  double epsilon =
      options_.initial_epsilon *
      std::pow(0.5, static_cast<double>(observations_) /
                        options_.epsilon_halflife);
  if (!risk_model_.trained() || rng_.Bernoulli(epsilon)) {
    // Explore: random candidate (the untrained optimizer explores the arm
    // space; with probability 1-eps it would pick the default plan, which
    // is candidates[0] by construction).
    if (!risk_model_.trained() && !rng_.Bernoulli(epsilon)) {
      return std::move(candidates[0]);
    }
    size_t pick = static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(candidates.size()) - 1));
    return std::move(candidates[pick]);
  }
  // One reusable feature matrix for the candidate set; a single batched
  // inference pass scores every arm's plan (no per-candidate feature
  // vector or per-row Predict call).
  feature_scratch_.Reset(PlanFeaturizer::kDim);
  feature_scratch_.Reserve(candidates.size());
  for (const PhysicalPlan& plan : candidates) {
    PlanFeaturizer::FeaturizeInto(plan, feature_scratch_.AppendRow());
  }
  size_t best = risk_model_.PickBest(feature_scratch_);
  return std::move(candidates[best]);
}

void BaoOptimizer::Observe(const Query& query, const PhysicalPlan& plan,
                           double time_units) {
  PlanExperience experience;
  experience.query_key = Subquery{&query, query.AllTables()}.Key();
  experience.features = PlanFeaturizer::Featurize(plan);
  experience.time_units = time_units;
  experience.plan_signature = plan.Signature();
  experience_.Add(std::move(experience));
  ++observations_;
}

void BaoOptimizer::Retrain() { risk_model_.Train(experience_); }

std::vector<HintSet> BaoOptimizer::DiscoverUsefulArms() const {
  if (observations_ == 0) return arms_;
  std::vector<HintSet> useful;
  for (size_t a = 0; a < arms_.size(); ++a) {
    bool is_default = arms_[a].enable_hash_join &&
                      arms_[a].enable_nested_loop &&
                      arms_[a].enable_merge_join;
    if (is_default || arm_useful_[a]) useful.push_back(arms_[a]);
  }
  return useful;
}

}  // namespace lqo
