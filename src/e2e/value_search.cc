#include "e2e/value_search.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "costmodel/plan_featurizer.h"

namespace lqo {

ValueSearch::ValueSearch(const E2eContext& context, int max_expansions,
                         int beam_width)
    : context_(context),
      max_expansions_(max_expansions),
      beam_width_(beam_width) {}

std::vector<double> ValueSearch::StateFeatures(
    const Query& query, const PhysicalPlan& partial) const {
  std::vector<double> features(kStateDim);
  StateFeaturesInto(query, partial, features.data());
  return features;
}

void ValueSearch::StateFeaturesInto(const Query& query,
                                    const PhysicalPlan& partial,
                                    double* out) const {
  PlanFeaturizer::FeaturizeInto(partial, out);
  int joined = PopCount(partial.root->table_set);
  out[PlanFeaturizer::kDim] = static_cast<double>(query.num_tables());
  out[PlanFeaturizer::kDim + 1] =
      static_cast<double>(query.num_tables() - joined);
}

std::vector<PhysicalPlan> ValueSearch::Expand(
    const Query& query, const PhysicalPlan& partial,
    CardinalityProvider* cards) const {
  TableSet joined = partial.root->table_set;
  // Enumerate the (table, algorithm) extensions first, then annotate them as
  // index-addressed tasks: annotation dominates (it walks the cost model and
  // estimator), construction is a clone.
  std::vector<std::pair<int, JoinAlgorithm>> combos;
  for (int t = 0; t < query.num_tables(); ++t) {
    if (ContainsTable(joined, t)) continue;
    // Must share a join edge with the joined set.
    bool adjacent = false;
    for (int n : query.Neighbors(t)) {
      if (ContainsTable(joined, n)) {
        adjacent = true;
        break;
      }
    }
    if (!adjacent) continue;
    for (JoinAlgorithm algo :
         {JoinAlgorithm::kHashJoin, JoinAlgorithm::kNestedLoopJoin,
          JoinAlgorithm::kMergeJoin}) {
      combos.emplace_back(t, algo);
    }
  }
  return ParallelMap(combos.size(), [&](size_t c) {
    PhysicalPlan next;
    next.query = &query;
    next.root = MakeJoinNode(combos[c].second, partial.root->Clone(),
                             MakeScanNode(combos[c].first));
    AnnotateWithProvider(context_, &next, cards);
    return next;
  });
}

PhysicalPlan ValueSearch::Search(const Query& query,
                                 const PointwiseRiskModel& value_model,
                                 Strategy strategy) const {
  LQO_CHECK(value_model.trained());
  LQO_CHECK(query.IsConnected(query.AllTables()));
  TableSet all = query.AllTables();

  // One frozen provider for the whole search: every expansion across every
  // level/pop shares the same concurrently-read estimate cache instead of
  // re-deriving baseline cards per candidate.
  CardinalityProvider cards(context_.estimator);
  cards.Freeze();

  // Values a batch of candidate states with one batched value-model pass:
  // the states featurize into one feature matrix (index-addressed rows, so
  // the parallel featurize is deterministic), then a single
  // PredictTimeBatch scores every row — bit-identical to per-state
  // PredictTime. Buffers are per-invocation: value_batch runs concurrently
  // from the per-frontier-state ParallelMap below, so they must not be
  // shared across calls.
  auto value_batch = [&](std::vector<PhysicalPlan> plans) {
    FeatureMatrix state_features(kStateDim);
    std::vector<double> state_values;
    state_features.Reserve(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) state_features.AppendRow();
    ParallelFor(plans.size(), [&](size_t i) {
      StateFeaturesInto(query, plans[i], state_features.MutableRow(i));
    });
    state_values.resize(plans.size());
    value_model.PredictTimeBatch(state_features, state_values);
    std::vector<SearchState> states(plans.size());
    for (size_t i = 0; i < plans.size(); ++i) {
      states[i].partial = std::move(plans[i]);
      states[i].value = state_values[i];
    }
    return states;
  };

  // Initial states: every single-table scan.
  std::vector<PhysicalPlan> scans =
      ParallelMap(static_cast<size_t>(query.num_tables()), [&](size_t t) {
        PhysicalPlan plan;
        plan.query = &query;
        plan.root = MakeScanNode(static_cast<int>(t));
        AnnotateWithProvider(context_, &plan, &cards);
        return plan;
      });
  std::vector<SearchState> frontier = value_batch(std::move(scans));
  if (query.num_tables() == 1) return std::move(frontier[0].partial);

  auto better = [](const SearchState& a, const SearchState& b) {
    return a.value < b.value;
  };

  if (strategy == Strategy::kBeam) {
    // Level-synchronous beam (Balsa): expand every frontier state in
    // parallel, then flatten in state order so the pre-sort sequence is
    // identical to the serial walk (std::sort on the same sequence yields
    // the same order, ties included).
    for (int level = 1; level < query.num_tables(); ++level) {
      std::vector<std::vector<SearchState>> expanded_per_state =
          ParallelMap(frontier.size(), [&](size_t s) {
            return value_batch(Expand(query, frontier[s].partial, &cards));
          });
      std::vector<SearchState> next_level;
      for (std::vector<SearchState>& expanded : expanded_per_state) {
        for (SearchState& state : expanded) {
          next_level.push_back(std::move(state));
        }
      }
      LQO_CHECK(!next_level.empty());
      std::sort(next_level.begin(), next_level.end(), better);
      if (static_cast<int>(next_level.size()) > beam_width_) {
        next_level.resize(static_cast<size_t>(beam_width_));
      }
      frontier = std::move(next_level);
    }
    return std::move(frontier[0].partial);
  }

  // Best-first (Neo): pop the lowest-value state, expand; the first
  // complete plan popped wins; expansion budget guards runaway searches.
  // Each pop's expansion batch annotates and values in parallel; heap
  // pushes stay serial in batch order, so the heap evolves exactly as in
  // the serial search.
  auto cmp = [](const SearchState& a, const SearchState& b) {
    return a.value > b.value;  // front = minimum value
  };
  std::vector<SearchState> heap = std::move(frontier);
  std::make_heap(heap.begin(), heap.end(), cmp);
  auto pop_min = [&]() {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    SearchState state = std::move(heap.back());
    heap.pop_back();
    return state;
  };
  int expansions = 0;
  while (!heap.empty() && expansions < max_expansions_) {
    SearchState state = pop_min();
    if (state.partial.root->table_set == all) {
      return std::move(state.partial);
    }
    ++expansions;
    for (SearchState& next :
         value_batch(Expand(query, state.partial, &cards))) {
      heap.push_back(std::move(next));
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  // Budget exhausted: greedily complete the best remaining state.
  LQO_CHECK(!heap.empty());
  SearchState state = pop_min();
  while (state.partial.root->table_set != all) {
    std::vector<SearchState> expanded =
        value_batch(Expand(query, state.partial, &cards));
    LQO_CHECK(!expanded.empty());
    size_t best = 0;
    for (size_t i = 1; i < expanded.size(); ++i) {
      if (expanded[i].value < expanded[best].value) best = i;
    }
    state.partial = std::move(expanded[best].partial);
  }
  return std::move(state.partial);
}

std::vector<PlanExperience> ValueSearch::SubplanExperiences(
    const Query& query, const PhysicalPlan& plan, double time_units) const {
  std::string query_key = Subquery{&query, query.AllTables()}.Key();
  // Collect the sub-plan roots bottom-up (cheap clones), then featurize
  // them in parallel against one shared frozen provider.
  std::vector<PhysicalPlan> partials;
  VisitPlanBottomUp(*plan.root, [&](const PlanNode& node) {
    // Sub-plans rooted at joins (and the scans, which seed the search).
    PhysicalPlan partial;
    partial.query = &query;
    partial.root = node.Clone();
    partials.push_back(std::move(partial));
  });
  CardinalityProvider cards(context_.estimator);
  cards.Freeze();
  return ParallelMap(partials.size(), [&](size_t i) {
    AnnotateWithProvider(context_, &partials[i], &cards);
    PlanExperience experience;
    experience.query_key = query_key;
    experience.features = StateFeatures(query, partials[i]);
    experience.time_units = time_units;
    experience.plan_signature = partials[i].Signature();
    return experience;
  });
}

}  // namespace lqo
