#include "e2e/value_search.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "costmodel/plan_featurizer.h"

namespace lqo {

ValueSearch::ValueSearch(const E2eContext& context, int max_expansions,
                         int beam_width)
    : context_(context),
      max_expansions_(max_expansions),
      beam_width_(beam_width) {}

std::vector<double> ValueSearch::StateFeatures(
    const Query& query, const PhysicalPlan& partial) const {
  std::vector<double> features = PlanFeaturizer::Featurize(partial);
  int joined = PopCount(partial.root->table_set);
  features.push_back(static_cast<double>(query.num_tables()));
  features.push_back(static_cast<double>(query.num_tables() - joined));
  return features;
}

std::vector<PhysicalPlan> ValueSearch::Expand(
    const Query& query, const PhysicalPlan& partial) const {
  std::vector<PhysicalPlan> expansions;
  TableSet joined = partial.root->table_set;
  for (int t = 0; t < query.num_tables(); ++t) {
    if (ContainsTable(joined, t)) continue;
    // Must share a join edge with the joined set.
    bool adjacent = false;
    for (int n : query.Neighbors(t)) {
      if (ContainsTable(joined, n)) {
        adjacent = true;
        break;
      }
    }
    if (!adjacent) continue;
    for (JoinAlgorithm algo :
         {JoinAlgorithm::kHashJoin, JoinAlgorithm::kNestedLoopJoin,
          JoinAlgorithm::kMergeJoin}) {
      PhysicalPlan next;
      next.query = &query;
      next.root = MakeJoinNode(algo, partial.root->Clone(), MakeScanNode(t));
      AnnotateWithBaseline(context_, &next);
      expansions.push_back(std::move(next));
    }
  }
  return expansions;
}

PhysicalPlan ValueSearch::Search(const Query& query,
                                 const PointwiseRiskModel& value_model,
                                 Strategy strategy) const {
  LQO_CHECK(value_model.trained());
  LQO_CHECK(query.IsConnected(query.AllTables()));
  TableSet all = query.AllTables();

  // Initial states: every single-table scan.
  std::vector<SearchState> frontier;
  for (int t = 0; t < query.num_tables(); ++t) {
    SearchState state;
    state.partial.query = &query;
    state.partial.root = MakeScanNode(t);
    AnnotateWithBaseline(context_, &state.partial);
    state.value =
        value_model.PredictTime(StateFeatures(query, state.partial));
    frontier.push_back(std::move(state));
  }
  if (query.num_tables() == 1) return std::move(frontier[0].partial);

  auto better = [](const SearchState& a, const SearchState& b) {
    return a.value < b.value;
  };

  if (strategy == Strategy::kBeam) {
    // Level-synchronous beam (Balsa).
    for (int level = 1; level < query.num_tables(); ++level) {
      std::vector<SearchState> next_level;
      for (const SearchState& state : frontier) {
        for (PhysicalPlan& expanded : Expand(query, state.partial)) {
          SearchState next;
          next.value =
              value_model.PredictTime(StateFeatures(query, expanded));
          next.partial = std::move(expanded);
          next_level.push_back(std::move(next));
        }
      }
      LQO_CHECK(!next_level.empty());
      std::sort(next_level.begin(), next_level.end(), better);
      if (static_cast<int>(next_level.size()) > beam_width_) {
        next_level.resize(static_cast<size_t>(beam_width_));
      }
      frontier = std::move(next_level);
    }
    return std::move(frontier[0].partial);
  }

  // Best-first (Neo): pop the lowest-value state, expand; the first
  // complete plan popped wins; expansion budget guards runaway searches.
  auto cmp = [](const SearchState& a, const SearchState& b) {
    return a.value > b.value;  // front = minimum value
  };
  std::vector<SearchState> heap = std::move(frontier);
  std::make_heap(heap.begin(), heap.end(), cmp);
  auto pop_min = [&]() {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    SearchState state = std::move(heap.back());
    heap.pop_back();
    return state;
  };
  int expansions = 0;
  while (!heap.empty() && expansions < max_expansions_) {
    SearchState state = pop_min();
    if (state.partial.root->table_set == all) {
      return std::move(state.partial);
    }
    ++expansions;
    for (PhysicalPlan& expanded : Expand(query, state.partial)) {
      SearchState next;
      next.value = value_model.PredictTime(StateFeatures(query, expanded));
      next.partial = std::move(expanded);
      heap.push_back(std::move(next));
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  // Budget exhausted: greedily complete the best remaining state.
  LQO_CHECK(!heap.empty());
  SearchState state = pop_min();
  while (state.partial.root->table_set != all) {
    std::vector<PhysicalPlan> expansions_list =
        Expand(query, state.partial);
    LQO_CHECK(!expansions_list.empty());
    size_t best = 0;
    double best_value = value_model.PredictTime(
        StateFeatures(query, expansions_list[0]));
    for (size_t i = 1; i < expansions_list.size(); ++i) {
      double v = value_model.PredictTime(
          StateFeatures(query, expansions_list[i]));
      if (v < best_value) {
        best_value = v;
        best = i;
      }
    }
    state.partial = std::move(expansions_list[best]);
  }
  return std::move(state.partial);
}

std::vector<PlanExperience> ValueSearch::SubplanExperiences(
    const Query& query, const PhysicalPlan& plan, double time_units) const {
  std::vector<PlanExperience> experiences;
  std::string query_key = Subquery{&query, query.AllTables()}.Key();
  VisitPlanBottomUp(*plan.root, [&](const PlanNode& node) {
    // Sub-plans rooted at joins (and the scans, which seed the search).
    PhysicalPlan partial;
    partial.query = &query;
    partial.root = node.Clone();
    AnnotateWithBaseline(context_, &partial);
    PlanExperience experience;
    experience.query_key = query_key;
    experience.features = StateFeatures(query, partial);
    experience.time_units = time_units;
    experience.plan_signature = partial.Signature();
    experiences.push_back(std::move(experience));
  });
  return experiences;
}

}  // namespace lqo
