#ifndef LQO_E2E_LEON_H_
#define LQO_E2E_LEON_H_

#include <vector>

#include "e2e/framework.h"
#include "e2e/risk_models.h"

namespace lqo {

/// Options for the LEON-style optimizer.
struct LeonOptions {
  uint64_t seed = 2601;
};

/// LEON [4]: ML-aided (not ML-replaced) optimization — keeps the native
/// dynamic-programming enumerator and calibrates its final choice with a
/// learned pairwise comparison model over the plans DP produces under
/// different enumeration modes (bushy / left-deep / greedy / operator
/// subsets). The comparator only overrides the native choice when trained.
class LeonOptimizer : public LearnedQueryOptimizer {
 public:
  LeonOptimizer(const E2eContext& context, LeonOptions options = LeonOptions());

  PhysicalPlan ChoosePlan(const Query& query) override;
  std::vector<PhysicalPlan> TrainingCandidates(const Query& query) override;
  CandidateSet TrainingCandidateSet(const Query& query) override;
  void Observe(const Query& query, const PhysicalPlan& plan,
               double time_units) override;
  void Retrain() override;
  std::string Name() const override { return "leon"; }
  bool trained() const override { return risk_model_.trained(); }
  InferenceStatsSnapshot InferenceStats() const override {
    return risk_model_.InferenceStats();
  }

 private:
  /// Native DP plan first, then distinct alternates from other enumeration
  /// modes.
  std::vector<PhysicalPlan> Candidates(const Query& query);

  E2eContext context_;
  LeonOptions options_;
  Optimizer left_deep_optimizer_;
  ExperienceBuffer experience_;
  PairwiseRiskModel risk_model_;
};

}  // namespace lqo

#endif  // LQO_E2E_LEON_H_
