#include "e2e/leon.h"

#include <set>

#include "common/logging.h"
#include "costmodel/plan_featurizer.h"

namespace lqo {
namespace {

OptimizerOptions LeftDeepOptions() {
  OptimizerOptions options;
  options.bushy = false;
  return options;
}

}  // namespace

LeonOptimizer::LeonOptimizer(const E2eContext& context, LeonOptions options)
    : context_(context),
      options_(options),
      left_deep_optimizer_(context.stats, context.cost_model,
                           LeftDeepOptions()),
      risk_model_(options.seed) {}

std::vector<PhysicalPlan> LeonOptimizer::Candidates(const Query& query) {
  std::vector<PhysicalPlan> candidates;
  std::set<std::string> seen;
  CardinalityProvider cards(context_.estimator);

  auto add = [&](PhysicalPlan plan) {
    if (!seen.insert(plan.Signature()).second) return;
    AnnotateWithBaseline(context_, &plan);
    candidates.push_back(std::move(plan));
  };

  add(context_.optimizer->Optimize(query, &cards).plan);  // native first.
  add(left_deep_optimizer_.Optimize(query, &cards).plan);
  if (query.num_tables() > 1) {
    add(context_.optimizer->OptimizeGreedy(query, &cards).plan);
  }
  HintSet no_nlj;
  no_nlj.enable_nested_loop = false;
  add(context_.optimizer->Optimize(query, &cards, no_nlj).plan);
  HintSet no_hash;
  no_hash.enable_hash_join = false;
  add(context_.optimizer->Optimize(query, &cards, no_hash).plan);
  return candidates;
}

PhysicalPlan LeonOptimizer::ChoosePlan(const Query& query) {
  CandidateSet set = TrainingCandidateSet(query);
  return std::move(set.plans[set.chosen]);
}

std::vector<PhysicalPlan> LeonOptimizer::TrainingCandidates(
    const Query& query) {
  return Candidates(query);
}

CandidateSet LeonOptimizer::TrainingCandidateSet(const Query& query) {
  CandidateSet set;
  set.plans = Candidates(query);
  LQO_CHECK(!set.plans.empty());
  // One featurize pass over the candidate set (served from the shared
  // plan-signature cache when present) and one batched comparator call.
  set.features.Reset(PlanFeaturizer::kDim);
  set.features.Reserve(set.plans.size());
  for (const PhysicalPlan& plan : set.plans) {
    FeaturizePlanCached(context_, query, plan, /*annotated=*/true,
                        set.features.AppendRow());
  }
  if (!risk_model_.trained() || set.plans.size() == 1) {
    set.chosen = 0;  // native DP choice.
    return set;
  }
  set.scores.resize(set.plans.size());
  risk_model_.ScoreBatch(set.features, set.scores);
  set.chosen = risk_model_.PickBestConservativeFromScores(set.scores, 0);
  return set;
}

void LeonOptimizer::Observe(const Query& query, const PhysicalPlan& plan,
                            double time_units) {
  PlanExperience experience;
  experience.query_key = Subquery{&query, query.AllTables()}.Key();
  experience.features =
      FeaturizePlanCachedVec(context_, query, plan, /*annotated=*/true);
  experience.time_units = time_units;
  experience.plan_signature = plan.Signature();
  experience_.Add(std::move(experience));
}

void LeonOptimizer::Retrain() { risk_model_.Train(experience_); }

}  // namespace lqo
