#include "e2e/leon.h"

#include <set>

#include "common/logging.h"
#include "costmodel/plan_featurizer.h"

namespace lqo {
namespace {

OptimizerOptions LeftDeepOptions() {
  OptimizerOptions options;
  options.bushy = false;
  return options;
}

}  // namespace

LeonOptimizer::LeonOptimizer(const E2eContext& context, LeonOptions options)
    : context_(context),
      options_(options),
      left_deep_optimizer_(context.stats, context.cost_model,
                           LeftDeepOptions()),
      risk_model_(options.seed) {}

std::vector<PhysicalPlan> LeonOptimizer::Candidates(const Query& query) {
  std::vector<PhysicalPlan> candidates;
  std::set<std::string> seen;
  CardinalityProvider cards(context_.estimator);

  auto add = [&](PhysicalPlan plan) {
    if (!seen.insert(plan.Signature()).second) return;
    AnnotateWithBaseline(context_, &plan);
    candidates.push_back(std::move(plan));
  };

  add(context_.optimizer->Optimize(query, &cards).plan);  // native first.
  add(left_deep_optimizer_.Optimize(query, &cards).plan);
  if (query.num_tables() > 1) {
    add(context_.optimizer->OptimizeGreedy(query, &cards).plan);
  }
  HintSet no_nlj;
  no_nlj.enable_nested_loop = false;
  add(context_.optimizer->Optimize(query, &cards, no_nlj).plan);
  HintSet no_hash;
  no_hash.enable_hash_join = false;
  add(context_.optimizer->Optimize(query, &cards, no_hash).plan);
  return candidates;
}

PhysicalPlan LeonOptimizer::ChoosePlan(const Query& query) {
  std::vector<PhysicalPlan> candidates = Candidates(query);
  LQO_CHECK(!candidates.empty());
  if (!risk_model_.trained() || candidates.size() == 1) {
    return std::move(candidates[0]);
  }
  // Reusable feature matrix + one batched comparator pass over the
  // candidate set (scores computed once, not per pairwise comparison).
  feature_scratch_.Reset(PlanFeaturizer::kDim);
  feature_scratch_.Reserve(candidates.size());
  for (const PhysicalPlan& plan : candidates) {
    PlanFeaturizer::FeaturizeInto(plan, feature_scratch_.AppendRow());
  }
  size_t best = risk_model_.PickBestConservative(feature_scratch_, 0);
  return std::move(candidates[best]);
}

std::vector<PhysicalPlan> LeonOptimizer::TrainingCandidates(
    const Query& query) {
  return Candidates(query);
}

void LeonOptimizer::Observe(const Query& query, const PhysicalPlan& plan,
                            double time_units) {
  PlanExperience experience;
  experience.query_key = Subquery{&query, query.AllTables()}.Key();
  experience.features = PlanFeaturizer::Featurize(plan);
  experience.time_units = time_units;
  experience.plan_signature = plan.Signature();
  experience_.Add(std::move(experience));
}

void LeonOptimizer::Retrain() { risk_model_.Train(experience_); }

}  // namespace lqo
