#ifndef LQO_E2E_LERO_H_
#define LQO_E2E_LERO_H_

#include <vector>

#include "costmodel/plan_featurizer.h"
#include "e2e/framework.h"
#include "e2e/risk_models.h"

namespace lqo {

/// Options for the Lero-style optimizer.
struct LeroOptions {
  /// Cardinality scaling factors applied to multi-table sub-queries to
  /// steer the native optimizer toward different plans.
  std::vector<double> scale_factors = {0.01, 0.1, 1.0, 10.0, 100.0};
  uint64_t seed = 2201;
};

/// Lero [79]: a learning-to-rank query optimizer. Candidate plans come from
/// re-optimizing with scaled cardinalities; a pairwise comparator model
/// picks the plan that wins the most head-to-head comparisons. During
/// training all distinct candidates are executed (Lero's plan exploration),
/// giving the comparator within-query pairs.
class LeroOptimizer : public LearnedQueryOptimizer {
 public:
  LeroOptimizer(const E2eContext& context, LeroOptions options = LeroOptions());

  PhysicalPlan ChoosePlan(const Query& query) override;
  std::vector<PhysicalPlan> TrainingCandidates(const Query& query) override;
  CandidateSet TrainingCandidateSet(const Query& query) override;
  void Observe(const Query& query, const PhysicalPlan& plan,
               double time_units) override;
  void Retrain() override;
  std::string Name() const override { return "lero"; }
  bool trained() const override { return risk_model_.trained(); }
  InferenceStatsSnapshot InferenceStats() const override {
    return risk_model_.InferenceStats();
  }

  /// Distinct candidate plans (baseline-annotated); index 0 is the native
  /// (scale = 1) plan.
  std::vector<PhysicalPlan> Candidates(const Query& query);

 private:
  E2eContext context_;
  LeroOptions options_;
  ExperienceBuffer experience_;
  PairwiseRiskModel risk_model_;
};

}  // namespace lqo

#endif  // LQO_E2E_LERO_H_
