#ifndef LQO_E2E_HYPERQO_H_
#define LQO_E2E_HYPERQO_H_

#include <memory>
#include <span>
#include <vector>

#include "e2e/framework.h"
#include "e2e/risk_models.h"
#include "ml/mlp.h"

namespace lqo {

/// Options for the HyperQO-style optimizer.
struct HyperQoOptions {
  int ensemble_size = 5;
  /// Candidates whose ensemble prediction spread (std / mean) exceeds this
  /// are filtered as too risky.
  double max_relative_std = 0.5;
  uint64_t seed = 2501;
};

/// HyperQO [72]: a hybrid cost/learning optimizer. Candidate plans come
/// from leading-table hints (pg_hint_plan LEADING); a multi-head model —
/// here an ensemble of MLPs — predicts latency with uncertainty; high-
/// variance candidates are filtered and the best remaining mean wins, with
/// the native plan always in the candidate set as the cost-based fallback.
class HyperQoOptimizer : public LearnedQueryOptimizer {
 public:
  HyperQoOptimizer(const E2eContext& context,
                   HyperQoOptions options = HyperQoOptions());

  PhysicalPlan ChoosePlan(const Query& query) override;
  std::vector<PhysicalPlan> TrainingCandidates(const Query& query) override;
  CandidateSet TrainingCandidateSet(const Query& query) override;
  void Observe(const Query& query, const PhysicalPlan& plan,
               double time_units) override;
  void Retrain() override;
  std::string Name() const override { return "hyperqo"; }
  bool trained() const override { return trained_; }
  InferenceStatsSnapshot InferenceStats() const override;

  /// Ensemble mean/std of predicted log latency for a feature vector.
  void Predict(const std::vector<double>& features, double* mean,
               double* stddev) const;

  /// Batch variant over all rows of `x`: each ensemble member scores the
  /// whole batch with one PredictBatch pass, then per-row mean/stddev
  /// reduce over the members in ensemble order — bit-identical to calling
  /// Predict row by row.
  void PredictBatch(const FeatureMatrix& x, std::span<double> means,
                    std::span<double> stddevs) const;

 private:
  /// Native plan first, then distinct leading-hint plans.
  std::vector<PhysicalPlan> Candidates(const Query& query);

  E2eContext context_;
  HyperQoOptions options_;
  ExperienceBuffer experience_;
  std::vector<Mlp> ensemble_;
  bool trained_ = false;
};

}  // namespace lqo

#endif  // LQO_E2E_HYPERQO_H_
