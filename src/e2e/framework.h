#ifndef LQO_E2E_FRAMEWORK_H_
#define LQO_E2E_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "costmodel/plan_featurizer.h"
#include "engine/plan.h"
#include "ml/dataset.h"
#include "ml/feature_cache.h"
#include "ml/inference_stats.h"
#include "optimizer/baseline_estimator.h"
#include "optimizer/optimizer.h"

namespace lqo {

class PlanCache;  // serving/plan_cache.h; e2e never dereferences it.

/// Shared context every end-to-end learned optimizer plans against: the
/// native optimizer, its statistics and its baseline estimator. Each
/// learned optimizer owns its own CardinalityProvider so knob turning
/// (scales, overrides) never leaks across methods.
struct E2eContext {
  const Catalog* catalog = nullptr;
  const StatsCatalog* stats = nullptr;
  const Optimizer* optimizer = nullptr;
  const AnalyticalCostModel* cost_model = nullptr;
  CardinalityEstimatorInterface* estimator = nullptr;
  /// Optional plan-signature feature cache shared by every optimizer that
  /// featurizes candidates with PlanFeaturizer against this context's
  /// estimator (see FeaturizePlanCached). Null disables caching; features
  /// are identical either way.
  FeatureCache* feature_cache = nullptr;
  /// Optional lab-wide parameterized plan cache for the serving front end
  /// (src/serving). Like feature_cache it is shared plumbing, not policy:
  /// e2e code never touches it; ServingFrontEnd keys it per producer so
  /// many optimizer families share one cache without collisions. Null when
  /// the lab serves nothing.
  PlanCache* plan_cache = nullptr;
};

/// One observed execution, the unit of experience for risk models.
struct PlanExperience {
  /// Groups observations of the same logical query (for pairwise models).
  std::string query_key;
  std::vector<double> features;
  double time_units = 0.0;
  std::string plan_signature;
};

/// One training step's candidate plans with their batched scoring
/// artifacts: the plans, the feature matrix they were scored from (one row
/// per plan; empty when the optimizer does not score candidates), per-plan
/// model scores/uncertainty (empty likewise), and the index of the plan the
/// optimizer would pick right now. Produced by TrainingCandidateSet so the
/// harness executes exactly the plans the optimizer scored — one featurize
/// pass and one PredictBatch per retrain step instead of per plan.
struct CandidateSet {
  std::vector<PhysicalPlan> plans;
  FeatureMatrix features;
  std::vector<double> scores;
  std::vector<double> uncertainty;
  /// Index into plans of the optimizer's current choice.
  size_t chosen = 0;
};

/// The paper's Section 2.2 unified framework: a learned query optimizer
/// generates candidate plans with some exploration strategy and selects one
/// with a learned risk model; execution feedback flows back via Observe and
/// periodic Retrain.
class LearnedQueryOptimizer {
 public:
  virtual ~LearnedQueryOptimizer() = default;

  /// The plan this optimizer would execute for `query` right now.
  virtual PhysicalPlan ChoosePlan(const Query& query) = 0;

  /// Candidate plans worth executing during the training phase (plan
  /// exploration). Default: just the chosen plan.
  virtual std::vector<PhysicalPlan> TrainingCandidates(const Query& query) {
    std::vector<PhysicalPlan> plans;
    plans.push_back(ChoosePlan(query));
    return plans;
  }

  /// Candidates plus batched scoring artifacts for one training step. The
  /// batch-scoring optimizers (Lero, LEON, HyperQO, Eraser) override this
  /// to featurize the whole candidate set into one FeatureMatrix (through
  /// the context's FeatureCache when present) and score it with a single
  /// PredictBatch call; their ChoosePlan is then `plans[chosen]` of this
  /// set. Default: wraps TrainingCandidates with empty scoring artifacts so
  /// ablation/probing subclasses keep working unchanged.
  virtual CandidateSet TrainingCandidateSet(const Query& query) {
    CandidateSet set;
    set.plans = TrainingCandidates(query);
    return set;
  }

  /// Execution feedback for one (query, plan) pair.
  virtual void Observe(const Query& query, const PhysicalPlan& plan,
                       double time_units) = 0;

  /// Refits the risk model from accumulated experience.
  virtual void Retrain() = 0;

  virtual std::string Name() const = 0;

  virtual bool trained() const = 0;

  /// Cumulative batched-inference counters across this optimizer's learned
  /// models (rows scored, batches, wall-clock). Default: empty snapshot for
  /// optimizers without batch-scored models.
  virtual InferenceStatsSnapshot InferenceStats() const { return {}; }
};

/// The native plan for a query (DP + analytical model + baseline cards) —
/// the comparison point for every learned optimizer and the fallback plan
/// several of them keep in their candidate sets.
PhysicalPlan NativePlan(const E2eContext& context, const Query& query);

/// Annotates `plan` with estimates from clean (unscaled) baseline cards so
/// risk-model features are computed consistently across candidates.
void AnnotateWithBaseline(const E2eContext& context, PhysicalPlan* plan);

/// As AnnotateWithBaseline, but against a caller-supplied provider. Pass a
/// *frozen* provider when annotating a batch of candidates from parallel
/// tasks: they then share one concurrent-read cache instead of re-deriving
/// every estimate per plan (see CardinalityProvider's freeze contract).
void AnnotateWithProvider(const E2eContext& context, PhysicalPlan* plan,
                          CardinalityProvider* cards);

/// Cache key of `plan`'s PlanFeaturizer row: the query's structural
/// Subquery::KeyHash (over all tables) mixed with a 64-bit FNV-1a of the
/// plan's structure signature. Features are pure functions of this key for
/// a fixed context (baseline estimator + cost model), which is what makes
/// caching them sound.
uint64_t PlanFeatureKey(const Query& query, const PhysicalPlan& plan);

/// Writes `plan`'s PlanFeaturizer::kDim features into `out`, serving from
/// `context.feature_cache` when present. On a hit the whole featurization
/// (and any annotation walk) is skipped; cached rows are bit-identical to
/// recomputation because features are pure functions of the plan key for a
/// fixed context. On a miss (or with no cache) the features are computed
/// and the row committed: pass `annotated` = true when the plan already
/// carries clean baseline cardinality annotations (candidate-generation
/// paths) so the miss featurizes it directly; with false the miss path
/// clones the plan and runs AnnotateWithBaseline first. `plan` itself is
/// never mutated either way.
void FeaturizePlanCached(const E2eContext& context, const Query& query,
                         const PhysicalPlan& plan, bool annotated,
                         double* out);

/// As FeaturizePlanCached, returning a fresh kDim vector (Observe paths).
std::vector<double> FeaturizePlanCachedVec(const E2eContext& context,
                                           const Query& query,
                                           const PhysicalPlan& plan,
                                           bool annotated);

}  // namespace lqo

#endif  // LQO_E2E_FRAMEWORK_H_
