#ifndef LQO_E2E_FRAMEWORK_H_
#define LQO_E2E_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/plan.h"
#include "ml/inference_stats.h"
#include "optimizer/baseline_estimator.h"
#include "optimizer/optimizer.h"

namespace lqo {

/// Shared context every end-to-end learned optimizer plans against: the
/// native optimizer, its statistics and its baseline estimator. Each
/// learned optimizer owns its own CardinalityProvider so knob turning
/// (scales, overrides) never leaks across methods.
struct E2eContext {
  const Catalog* catalog = nullptr;
  const StatsCatalog* stats = nullptr;
  const Optimizer* optimizer = nullptr;
  const AnalyticalCostModel* cost_model = nullptr;
  CardinalityEstimatorInterface* estimator = nullptr;
};

/// One observed execution, the unit of experience for risk models.
struct PlanExperience {
  /// Groups observations of the same logical query (for pairwise models).
  std::string query_key;
  std::vector<double> features;
  double time_units = 0.0;
  std::string plan_signature;
};

/// The paper's Section 2.2 unified framework: a learned query optimizer
/// generates candidate plans with some exploration strategy and selects one
/// with a learned risk model; execution feedback flows back via Observe and
/// periodic Retrain.
class LearnedQueryOptimizer {
 public:
  virtual ~LearnedQueryOptimizer() = default;

  /// The plan this optimizer would execute for `query` right now.
  virtual PhysicalPlan ChoosePlan(const Query& query) = 0;

  /// Candidate plans worth executing during the training phase (plan
  /// exploration). Default: just the chosen plan.
  virtual std::vector<PhysicalPlan> TrainingCandidates(const Query& query) {
    std::vector<PhysicalPlan> plans;
    plans.push_back(ChoosePlan(query));
    return plans;
  }

  /// Execution feedback for one (query, plan) pair.
  virtual void Observe(const Query& query, const PhysicalPlan& plan,
                       double time_units) = 0;

  /// Refits the risk model from accumulated experience.
  virtual void Retrain() = 0;

  virtual std::string Name() const = 0;

  virtual bool trained() const = 0;

  /// Cumulative batched-inference counters across this optimizer's learned
  /// models (rows scored, batches, wall-clock). Default: empty snapshot for
  /// optimizers without batch-scored models.
  virtual InferenceStatsSnapshot InferenceStats() const { return {}; }
};

/// The native plan for a query (DP + analytical model + baseline cards) —
/// the comparison point for every learned optimizer and the fallback plan
/// several of them keep in their candidate sets.
PhysicalPlan NativePlan(const E2eContext& context, const Query& query);

/// Annotates `plan` with estimates from clean (unscaled) baseline cards so
/// risk-model features are computed consistently across candidates.
void AnnotateWithBaseline(const E2eContext& context, PhysicalPlan* plan);

/// As AnnotateWithBaseline, but against a caller-supplied provider. Pass a
/// *frozen* provider when annotating a batch of candidates from parallel
/// tasks: they then share one concurrent-read cache instead of re-deriving
/// every estimate per plan (see CardinalityProvider's freeze contract).
void AnnotateWithProvider(const E2eContext& context, PhysicalPlan* plan,
                          CardinalityProvider* cards);

}  // namespace lqo

#endif  // LQO_E2E_FRAMEWORK_H_
