#ifndef LQO_E2E_NEO_H_
#define LQO_E2E_NEO_H_

#include "e2e/framework.h"
#include "e2e/risk_models.h"
#include "e2e/value_search.h"

namespace lqo {

/// Options for the Neo-style optimizer.
struct NeoOptions {
  int max_expansions = 300;
  uint64_t seed = 2301;
};

/// Neo [38]: a fully learned optimizer that builds plans from scratch with
/// best-first search guided by a value network predicting final latency,
/// bootstrapped from the native ("expert") optimizer's executions and
/// refined from its own.
class NeoOptimizer : public LearnedQueryOptimizer {
 public:
  NeoOptimizer(const E2eContext& context, NeoOptions options = NeoOptions());

  PhysicalPlan ChoosePlan(const Query& query) override;
  void Observe(const Query& query, const PhysicalPlan& plan,
               double time_units) override;
  void Retrain() override;
  std::string Name() const override { return "neo"; }
  bool trained() const override { return value_model_.trained(); }
  InferenceStatsSnapshot InferenceStats() const override {
    return value_model_.InferenceStats();
  }

 private:
  E2eContext context_;
  NeoOptions options_;
  ValueSearch search_;
  ExperienceBuffer experience_;
  PointwiseRiskModel value_model_;
};

/// Options for the Balsa-style optimizer.
struct BalsaOptions {
  int beam_width = 8;
  /// Queries used to bootstrap the value model from *analytical cost*
  /// before any execution — Balsa's "learning without expert
  /// demonstrations" via its simulation phase.
  int simulation_plans_per_query = 6;
  uint64_t seed = 2401;
};

/// Balsa [69]: learns a query optimizer without expert demonstrations —
/// the value model is bootstrapped in a cost-model "simulation" phase and
/// then fine-tuned on real executions; plans are built with beam search.
class BalsaOptimizer : public LearnedQueryOptimizer {
 public:
  BalsaOptimizer(const E2eContext& context,
                 const std::vector<Query>& simulation_queries,
                 BalsaOptions options = BalsaOptions());

  PhysicalPlan ChoosePlan(const Query& query) override;
  void Observe(const Query& query, const PhysicalPlan& plan,
               double time_units) override;
  void Retrain() override;
  std::string Name() const override { return "balsa"; }
  bool trained() const override { return value_model_.trained(); }
  InferenceStatsSnapshot InferenceStats() const override {
    return value_model_.InferenceStats();
  }

  size_t real_experience_size() const { return real_experience_.size(); }

 private:
  /// Runs the simulation phase: label sub-plans of diverse candidate plans
  /// with their *analytical* cost and fit the initial value model.
  void Simulate(const std::vector<Query>& queries);

  E2eContext context_;
  BalsaOptions options_;
  ValueSearch search_;
  ExperienceBuffer sim_experience_;
  ExperienceBuffer real_experience_;
  PointwiseRiskModel value_model_;
};

}  // namespace lqo

#endif  // LQO_E2E_NEO_H_
