#include "e2e/hyperqo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/stats_util.h"
#include "common/thread_pool.h"
#include "costmodel/plan_featurizer.h"

namespace lqo {

HyperQoOptimizer::HyperQoOptimizer(const E2eContext& context,
                                   HyperQoOptions options)
    : context_(context), options_(options) {}

std::vector<PhysicalPlan> HyperQoOptimizer::Candidates(const Query& query) {
  // Batched candidate costing: the native plan plus one leading hint per
  // driving table, all planned concurrently against one frozen provider so
  // every candidate shares the same estimate cache.
  CardinalityProvider cards(context_.estimator);
  cards.Freeze();
  size_t n = static_cast<size_t>(query.num_tables());
  std::vector<PhysicalPlan> plans =
      ParallelMap(n + 1, [&](size_t i) {
        HintSet hints;
        if (i > 0) hints.leading = {static_cast<int>(i) - 1};
        PhysicalPlan plan =
            context_.optimizer->Optimize(query, &cards, hints).plan;
        AnnotateWithProvider(context_, &plan, &cards);
        return plan;
      });

  // Serial signature dedup in the old emission order (native first, then
  // driving tables in index order).
  std::vector<PhysicalPlan> candidates;
  std::set<std::string> seen;
  for (PhysicalPlan& plan : plans) {
    if (!seen.insert(plan.Signature()).second) continue;
    candidates.push_back(std::move(plan));
  }
  return candidates;
}

void HyperQoOptimizer::Predict(const std::vector<double>& features,
                               double* mean, double* stddev) const {
  LQO_CHECK(trained_);
  std::vector<double> predictions;
  for (const Mlp& model : ensemble_) {
    predictions.push_back(model.Predict(features));
  }
  *mean = Mean(predictions);
  *stddev = StdDev(predictions);
}

void HyperQoOptimizer::PredictBatch(const FeatureMatrix& x,
                                    std::span<double> means,
                                    std::span<double> stddevs) const {
  LQO_CHECK(trained_);
  LQO_CHECK_EQ(x.rows(), means.size());
  LQO_CHECK_EQ(x.rows(), stddevs.size());
  if (x.empty()) return;
  size_t n = x.rows();
  // Member-major: each MLP runs one blocked forward pass over the whole
  // batch. The per-row reduction then gathers that row's predictions in
  // ensemble order, so Mean/StdDev see the exact vector the scalar path
  // builds.
  std::vector<double> member_out(ensemble_.size() * n);
  for (size_t k = 0; k < ensemble_.size(); ++k) {
    ensemble_[k].PredictBatch(x,
                              std::span<double>(&member_out[k * n], n));
  }
  std::vector<double> row_predictions(ensemble_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < ensemble_.size(); ++k) {
      row_predictions[k] = member_out[k * n + i];
    }
    means[i] = Mean(row_predictions);
    stddevs[i] = StdDev(row_predictions);
  }
}

InferenceStatsSnapshot HyperQoOptimizer::InferenceStats() const {
  InferenceStatsSnapshot total;
  for (const Mlp& model : ensemble_) total += model.Stats();
  return total;
}

PhysicalPlan HyperQoOptimizer::ChoosePlan(const Query& query) {
  CandidateSet set = TrainingCandidateSet(query);
  return std::move(set.plans[set.chosen]);
}

std::vector<PhysicalPlan> HyperQoOptimizer::TrainingCandidates(
    const Query& query) {
  return Candidates(query);
}

CandidateSet HyperQoOptimizer::TrainingCandidateSet(const Query& query) {
  CandidateSet set;
  set.plans = Candidates(query);
  LQO_CHECK(!set.plans.empty());
  // One featurize pass over the candidate set (served from the shared
  // plan-signature cache when present); the ensemble then scores it in a
  // handful of batched forward passes instead of one scalar Predict per
  // model per candidate.
  set.features.Reset(PlanFeaturizer::kDim);
  set.features.Reserve(set.plans.size());
  for (const PhysicalPlan& plan : set.plans) {
    FeaturizePlanCached(context_, query, plan, /*annotated=*/true,
                        set.features.AppendRow());
  }
  if (!trained_ || set.plans.size() == 1) {
    set.chosen = 0;  // cost-based fallback.
    return set;
  }
  set.scores.resize(set.plans.size());
  set.uncertainty.resize(set.plans.size());
  PredictBatch(set.features, set.scores, set.uncertainty);
  size_t best = 0;  // native fallback survives any filtering.
  double best_mean = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < set.plans.size(); ++i) {
    double mean = set.scores[i];
    double stddev = set.uncertainty[i];
    // Variance filter: skip risky candidates (never filters the native
    // plan out of existence — if everything is filtered, native wins).
    if (stddev > options_.max_relative_std * std::max(std::abs(mean), 1e-3)) {
      continue;
    }
    if (mean < best_mean) {
      best_mean = mean;
      best = i;
    }
  }
  set.chosen = best;
  return set;
}

void HyperQoOptimizer::Observe(const Query& query, const PhysicalPlan& plan,
                               double time_units) {
  PlanExperience experience;
  experience.query_key = Subquery{&query, query.AllTables()}.Key();
  experience.features =
      FeaturizePlanCachedVec(context_, query, plan, /*annotated=*/true);
  experience.time_units = time_units;
  experience.plan_signature = plan.Signature();
  experience_.Add(std::move(experience));
}

void HyperQoOptimizer::Retrain() {
  if (experience_.size() < 8) return;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const PlanExperience& record : experience_.records()) {
    x.push_back(record.features);
    y.push_back(std::log(record.time_units + 1.0));
  }
  ensemble_.clear();
  for (int k = 0; k < options_.ensemble_size; ++k) {
    MlpOptions mlp_options;
    mlp_options.hidden_layers = {32, 16};
    mlp_options.epochs = 60;
    mlp_options.seed = options_.seed + static_cast<uint64_t>(k) * 97;
    Mlp model(mlp_options);
    model.Fit(x, y);
    ensemble_.push_back(std::move(model));
  }
  trained_ = true;
}

}  // namespace lqo
