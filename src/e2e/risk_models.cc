#include "e2e/risk_models.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/logging.h"

namespace lqo {

void PointwiseRiskModel::Train(const ExperienceBuffer& buffer) {
  if (buffer.size() < 4) return;
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (const PlanExperience& record : buffer.records()) {
    x.push_back(record.features);
    y.push_back(std::log(record.time_units + 1.0));
  }
  GbdtOptions options;
  options.num_trees = 100;
  options.tree.max_depth = 4;
  model_ = GradientBoostedTrees(options);
  model_.Fit(x, y);
  trained_ = true;
}

double PointwiseRiskModel::PredictTime(
    const std::vector<double>& features) const {
  LQO_CHECK(trained_);
  double log_time = std::clamp(model_.Predict(features), 0.0, 50.0);
  return std::exp(log_time) - 1.0;
}

void PointwiseRiskModel::PredictTimeBatch(const FeatureMatrix& x,
                                          std::span<double> out) const {
  LQO_CHECK(trained_);
  LQO_CHECK_EQ(x.rows(), out.size());
  model_.PredictBatch(x, out);
  for (size_t i = 0; i < out.size(); ++i) {
    double log_time = std::clamp(out[i], 0.0, 50.0);
    out[i] = std::exp(log_time) - 1.0;
  }
}

size_t PointwiseRiskModel::PickBest(
    const std::vector<std::vector<double>>& candidates) const {
  LQO_CHECK(!candidates.empty());
  LQO_CHECK(trained_);
  size_t best = 0;
  double best_time = PredictTime(candidates[0]);
  for (size_t i = 1; i < candidates.size(); ++i) {
    double t = PredictTime(candidates[i]);
    if (t < best_time) {
      best_time = t;
      best = i;
    }
  }
  return best;
}

size_t PointwiseRiskModel::PickBest(const FeatureMatrix& candidates) const {
  LQO_CHECK(!candidates.empty());
  LQO_CHECK(trained_);
  std::vector<double> times(candidates.rows());
  PredictTimeBatch(candidates, times);
  size_t best = 0;
  for (size_t i = 1; i < times.size(); ++i) {
    if (times[i] < times[best]) best = i;
  }
  return best;
}

PairwiseRiskModel::PairwiseRiskModel(uint64_t seed) : seed_(seed) {}

void PairwiseRiskModel::Train(const ExperienceBuffer& buffer,
                              double min_gap_ratio, size_t min_pairs) {
  // Group experiences per logical query; the within-group minimum removes
  // the per-query latency scale, leaving the pairwise signal.
  std::map<std::string, std::vector<const PlanExperience*>> groups;
  for (const PlanExperience& record : buffer.records()) {
    groups[record.query_key].push_back(&record);
  }
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  size_t comparable = 0;
  for (const auto& [key, records] : groups) {
    double group_min = std::numeric_limits<double>::infinity();
    std::set<std::string> distinct;
    for (const PlanExperience* record : records) {
      group_min = std::min(group_min, record->time_units);
      distinct.insert(record->plan_signature);
    }
    if (group_min <= 0 || distinct.size() < 2) continue;
    bool spread = false;
    for (const PlanExperience* record : records) {
      x.push_back(record->features);
      y.push_back(std::log(std::max(record->time_units, 1e-9) / group_min));
      if (record->time_units / group_min >= min_gap_ratio) spread = true;
    }
    if (spread) comparable += distinct.size();
  }
  if (comparable < min_pairs) return;
  GbdtOptions options;
  options.num_trees = 120;
  options.tree.max_depth = 4;
  options.seed = seed_;
  scorer_ = GradientBoostedTrees(options);
  scorer_.Fit(x, y);
  trained_ = true;
}

double PairwiseRiskModel::Score(const std::vector<double>& features) const {
  LQO_CHECK(trained_);
  return scorer_.Predict(features);
}

void PairwiseRiskModel::ScoreBatch(const FeatureMatrix& x,
                                   std::span<double> out) const {
  LQO_CHECK(trained_);
  scorer_.PredictBatch(x, out);
}

size_t PairwiseRiskModel::PickBestFromScores(
    std::span<const double> scores) const {
  LQO_CHECK(trained_);
  LQO_CHECK(!scores.empty());
  std::vector<int> wins(scores.size(), 0);
  for (size_t i = 0; i < scores.size(); ++i) {
    for (size_t j = i + 1; j < scores.size(); ++j) {
      if (Sigmoid(3.0 * (scores[j] - scores[i])) >= 0.5) {
        ++wins[i];
      } else {
        ++wins[j];
      }
    }
  }
  size_t best = 0;
  for (size_t i = 1; i < scores.size(); ++i) {
    if (wins[i] > wins[best]) best = i;
  }
  return best;
}

size_t PairwiseRiskModel::PickBest(const FeatureMatrix& candidates) const {
  LQO_CHECK(!candidates.empty());
  LQO_CHECK(trained_);
  std::vector<double> scores(candidates.rows());
  ScoreBatch(candidates, scores);
  return PickBestFromScores(scores);
}

size_t PairwiseRiskModel::PickBestConservativeFromScores(
    std::span<const double> scores, size_t baseline, double confidence) const {
  LQO_CHECK_LT(baseline, scores.size());
  LQO_CHECK(trained_);
  size_t best = PickBestFromScores(scores);
  if (best == baseline) return baseline;
  return Sigmoid(3.0 * (scores[baseline] - scores[best])) >= confidence
             ? best
             : baseline;
}

size_t PairwiseRiskModel::PickBestConservative(const FeatureMatrix& candidates,
                                               size_t baseline,
                                               double confidence) const {
  LQO_CHECK_LT(baseline, candidates.rows());
  LQO_CHECK(trained_);
  std::vector<double> scores(candidates.rows());
  ScoreBatch(candidates, scores);
  return PickBestConservativeFromScores(scores, baseline, confidence);
}

size_t PairwiseRiskModel::PickBestConservative(
    const std::vector<std::vector<double>>& candidates, size_t baseline,
    double confidence) const {
  LQO_CHECK_LT(baseline, candidates.size());
  size_t best = PickBest(candidates);
  if (best == baseline) return baseline;
  return CompareProba(candidates[best], candidates[baseline]) >= confidence
             ? best
             : baseline;
}

double PairwiseRiskModel::CompareProba(const std::vector<double>& a,
                                       const std::vector<double>& b) const {
  // Lower relative-latency score means faster; scale sharpens the
  // probability so clearly-separated scores saturate.
  return Sigmoid(3.0 * (Score(b) - Score(a)));
}

size_t PairwiseRiskModel::PickBest(
    const std::vector<std::vector<double>>& candidates) const {
  LQO_CHECK(!candidates.empty());
  LQO_CHECK(trained_);
  std::vector<int> wins(candidates.size(), 0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      if (CompareProba(candidates[i], candidates[j]) >= 0.5) {
        ++wins[i];
      } else {
        ++wins[j];
      }
    }
  }
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (wins[i] > wins[best]) best = i;
  }
  return best;
}

}  // namespace lqo
