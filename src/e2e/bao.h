#ifndef LQO_E2E_BAO_H_
#define LQO_E2E_BAO_H_

#include <vector>

#include "common/rng.h"
#include "costmodel/plan_featurizer.h"
#include "e2e/framework.h"
#include "e2e/risk_models.h"

namespace lqo {

/// Options for the Bao-style optimizer.
struct BaoOptions {
  /// Epsilon-greedy exploration over hint arms before/while the risk model
  /// trains, decaying with the number of observations.
  double initial_epsilon = 0.5;
  int epsilon_halflife = 40;  // observations
  /// Hint arms as bitmasks over {hash=1, nlj=2, merge=4}; the first mask
  /// must be 7 (the default arm). Trimming this list is the knob the E10
  /// ablation sweeps.
  std::vector<int> arm_masks = {7, 1, 2, 3, 4, 5, 6};
  uint64_t seed = 2101;
};

/// Bao [37]: steers the native optimizer with operator on/off hint sets
/// (the 7 non-empty subsets of {hash, nlj, merge}) and selects the arm
/// whose plan a learned latency model scores best. AutoSteer's [1]
/// automated hint-set discovery is reflected in DiscoverUsefulArms(), which
/// prunes arms that never produce a distinct plan.
class BaoOptimizer : public LearnedQueryOptimizer {
 public:
  BaoOptimizer(const E2eContext& context, BaoOptions options = BaoOptions());

  PhysicalPlan ChoosePlan(const Query& query) override;
  void Observe(const Query& query, const PhysicalPlan& plan,
               double time_units) override;
  void Retrain() override;
  std::string Name() const override { return "bao"; }
  bool trained() const override { return risk_model_.trained(); }
  InferenceStatsSnapshot InferenceStats() const override {
    return risk_model_.InferenceStats();
  }

  /// Arms whose plans differed from the default on at least one observed
  /// query (AutoSteer-style pruning); all arms before any observation.
  std::vector<HintSet> DiscoverUsefulArms() const;

  const std::vector<HintSet>& arms() const { return arms_; }

 private:
  /// Distinct candidate plans across arms, baseline-annotated.
  std::vector<PhysicalPlan> Candidates(const Query& query);

  E2eContext context_;
  BaoOptions options_;
  std::vector<HintSet> arms_;
  ExperienceBuffer experience_;
  PointwiseRiskModel risk_model_;
  Rng rng_;
  int observations_ = 0;
  /// Arm indices that produced a plan different from the default arm.
  std::vector<bool> arm_useful_;
  /// Reused across ChoosePlan calls (capacity persists).
  FeatureMatrix feature_scratch_;
};

}  // namespace lqo

#endif  // LQO_E2E_BAO_H_
