#include "e2e/neo.h"

#include "common/logging.h"

namespace lqo {

NeoOptimizer::NeoOptimizer(const E2eContext& context, NeoOptions options)
    : context_(context),
      options_(options),
      search_(context, options.max_expansions, /*beam_width=*/1) {}

PhysicalPlan NeoOptimizer::ChoosePlan(const Query& query) {
  if (!value_model_.trained()) {
    // Expert bootstrap phase: execute the native optimizer's plans.
    return NativePlan(context_, query);
  }
  return search_.Search(query, value_model_,
                        ValueSearch::Strategy::kBestFirst);
}

void NeoOptimizer::Observe(const Query& query, const PhysicalPlan& plan,
                           double time_units) {
  for (PlanExperience& experience :
       search_.SubplanExperiences(query, plan, time_units)) {
    experience_.Add(std::move(experience));
  }
}

void NeoOptimizer::Retrain() { value_model_.Train(experience_); }

BalsaOptimizer::BalsaOptimizer(const E2eContext& context,
                               const std::vector<Query>& simulation_queries,
                               BalsaOptions options)
    : context_(context),
      options_(options),
      search_(context, /*max_expansions=*/300, options.beam_width) {
  Simulate(simulation_queries);
}

void BalsaOptimizer::Simulate(const std::vector<Query>& queries) {
  // Diverse plans per query via hint variants and enumerator choice,
  // labeled with *analytical cost* (no execution — the simulation phase).
  std::vector<HintSet> variants;
  variants.push_back(HintSet{});
  for (int mask = 1; mask < 7; ++mask) {
    HintSet hints;
    hints.enable_hash_join = (mask & 1) != 0;
    hints.enable_nested_loop = (mask & 2) != 0;
    hints.enable_merge_join = (mask & 4) != 0;
    variants.push_back(hints);
  }
  CardinalityProvider cards(context_.estimator);
  for (const Query& query : queries) {
    int produced = 0;
    for (const HintSet& hints : variants) {
      if (produced >= options_.simulation_plans_per_query) break;
      PlannerResult result = context_.optimizer->Optimize(query, &cards,
                                                          hints);
      ++produced;
      for (PlanExperience& experience : search_.SubplanExperiences(
               query, result.plan, result.estimated_cost)) {
        sim_experience_.Add(std::move(experience));
      }
    }
    if (query.num_tables() > 1) {
      PlannerResult greedy = context_.optimizer->OptimizeGreedy(query, &cards);
      for (PlanExperience& experience : search_.SubplanExperiences(
               query, greedy.plan, greedy.estimated_cost)) {
        sim_experience_.Add(std::move(experience));
      }
    }
  }
  value_model_.Train(sim_experience_);
}

PhysicalPlan BalsaOptimizer::ChoosePlan(const Query& query) {
  if (!value_model_.trained()) {
    // Degenerate case (no simulation queries): greedy fallback.
    CardinalityProvider cards(context_.estimator);
    return query.num_tables() > 1
               ? context_.optimizer->OptimizeGreedy(query, &cards).plan
               : NativePlan(context_, query);
  }
  return search_.Search(query, value_model_, ValueSearch::Strategy::kBeam);
}

void BalsaOptimizer::Observe(const Query& query, const PhysicalPlan& plan,
                             double time_units) {
  for (PlanExperience& experience :
       search_.SubplanExperiences(query, plan, time_units)) {
    real_experience_.Add(std::move(experience));
  }
}

void BalsaOptimizer::Retrain() {
  // Fine-tune: once real executions exist, they replace the simulation
  // labels (which are on a different scale).
  if (real_experience_.size() >= 30) {
    value_model_.Train(real_experience_);
  }
}

}  // namespace lqo
