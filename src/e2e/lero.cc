#include "e2e/lero.h"

#include <set>

#include "common/logging.h"

namespace lqo {

LeroOptimizer::LeroOptimizer(const E2eContext& context, LeroOptions options)
    : context_(context),
      options_(options),
      risk_model_(options.seed) {}

std::vector<PhysicalPlan> LeroOptimizer::Candidates(const Query& query) {
  std::vector<PhysicalPlan> candidates;
  std::set<std::string> seen;
  CardinalityProvider cards(context_.estimator);

  // Native (scale = 1) first.
  PhysicalPlan native = context_.optimizer->Optimize(query, &cards).plan;
  seen.insert(native.Signature());
  AnnotateWithBaseline(context_, &native);
  candidates.push_back(std::move(native));

  for (double factor : options_.scale_factors) {
    if (factor == 1.0) continue;
    cards.ClearOverrides();
    cards.SetScale(factor, 2);
    PhysicalPlan plan = context_.optimizer->Optimize(query, &cards).plan;
    cards.ClearOverrides();
    if (!seen.insert(plan.Signature()).second) continue;
    AnnotateWithBaseline(context_, &plan);
    candidates.push_back(std::move(plan));
  }
  return candidates;
}

PhysicalPlan LeroOptimizer::ChoosePlan(const Query& query) {
  std::vector<PhysicalPlan> candidates = Candidates(query);
  LQO_CHECK(!candidates.empty());
  if (!risk_model_.trained() || candidates.size() == 1) {
    return std::move(candidates[0]);  // native fallback.
  }
  std::vector<std::vector<double>> features;
  for (const PhysicalPlan& plan : candidates) {
    features.push_back(PlanFeaturizer::Featurize(plan));
  }
  size_t best = risk_model_.PickBestConservative(features, 0);
  return std::move(candidates[best]);
}

std::vector<PhysicalPlan> LeroOptimizer::TrainingCandidates(
    const Query& query) {
  return Candidates(query);
}

void LeroOptimizer::Observe(const Query& query, const PhysicalPlan& plan,
                            double time_units) {
  PlanExperience experience;
  experience.query_key = Subquery{&query, query.AllTables()}.Key();
  experience.features = PlanFeaturizer::Featurize(plan);
  experience.time_units = time_units;
  experience.plan_signature = plan.Signature();
  experience_.Add(std::move(experience));
}

void LeroOptimizer::Retrain() { risk_model_.Train(experience_); }

}  // namespace lqo
