#include "e2e/lero.h"

#include <set>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

LeroOptimizer::LeroOptimizer(const E2eContext& context, LeroOptions options)
    : context_(context),
      options_(options),
      risk_model_(options.seed) {}

std::vector<PhysicalPlan> LeroOptimizer::Candidates(const Query& query) {
  // One frozen base provider shares raw estimates across every scale
  // factor; each costing task plans against its own scaled read-through
  // view, so a sub-query's estimate is derived once and rescaled per
  // candidate instead of recomputed from scratch per factor.
  CardinalityProvider base(context_.estimator);
  base.Freeze();

  // Native (scale = 1) first so candidates[0] stays the native plan.
  std::vector<double> factors = {1.0};
  for (double factor : options_.scale_factors) {
    if (factor != 1.0) factors.push_back(factor);
  }
  std::vector<PhysicalPlan> plans =
      ParallelMap(factors.size(), [&](size_t f) {
        CardinalityProvider view(&base, factors[f], /*scale_min_tables=*/2);
        PhysicalPlan plan = context_.optimizer->Optimize(query, &view).plan;
        AnnotateWithProvider(context_, &plan, &base);
        return plan;
      });

  // Serial signature dedup in factor order (identical to the old
  // one-factor-at-a-time walk).
  std::vector<PhysicalPlan> candidates;
  std::set<std::string> seen;
  for (PhysicalPlan& plan : plans) {
    if (!seen.insert(plan.Signature()).second) continue;
    candidates.push_back(std::move(plan));
  }
  return candidates;
}

PhysicalPlan LeroOptimizer::ChoosePlan(const Query& query) {
  CandidateSet set = TrainingCandidateSet(query);
  return std::move(set.plans[set.chosen]);
}

std::vector<PhysicalPlan> LeroOptimizer::TrainingCandidates(
    const Query& query) {
  return Candidates(query);
}

CandidateSet LeroOptimizer::TrainingCandidateSet(const Query& query) {
  CandidateSet set;
  set.plans = Candidates(query);
  LQO_CHECK(!set.plans.empty());
  // The whole candidate set is featurized in one pass — through the shared
  // plan-signature feature cache when the context provides one (the rows
  // also warm the cache for Observe) — then scored with a single batched
  // comparator call.
  set.features.Reset(PlanFeaturizer::kDim);
  set.features.Reserve(set.plans.size());
  for (const PhysicalPlan& plan : set.plans) {
    FeaturizePlanCached(context_, query, plan, /*annotated=*/true,
                        set.features.AppendRow());
  }
  if (!risk_model_.trained() || set.plans.size() == 1) {
    set.chosen = 0;  // native fallback.
    return set;
  }
  set.scores.resize(set.plans.size());
  risk_model_.ScoreBatch(set.features, set.scores);
  set.chosen = risk_model_.PickBestConservativeFromScores(set.scores, 0);
  return set;
}

void LeroOptimizer::Observe(const Query& query, const PhysicalPlan& plan,
                            double time_units) {
  PlanExperience experience;
  experience.query_key = Subquery{&query, query.AllTables()}.Key();
  experience.features =
      FeaturizePlanCachedVec(context_, query, plan, /*annotated=*/true);
  experience.time_units = time_units;
  experience.plan_signature = plan.Signature();
  experience_.Add(std::move(experience));
}

void LeroOptimizer::Retrain() { risk_model_.Train(experience_); }

}  // namespace lqo
