#include "e2e/lero.h"

#include <set>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

LeroOptimizer::LeroOptimizer(const E2eContext& context, LeroOptions options)
    : context_(context),
      options_(options),
      risk_model_(options.seed) {}

std::vector<PhysicalPlan> LeroOptimizer::Candidates(const Query& query) {
  // One frozen base provider shares raw estimates across every scale
  // factor; each costing task plans against its own scaled read-through
  // view, so a sub-query's estimate is derived once and rescaled per
  // candidate instead of recomputed from scratch per factor.
  CardinalityProvider base(context_.estimator);
  base.Freeze();

  // Native (scale = 1) first so candidates[0] stays the native plan.
  std::vector<double> factors = {1.0};
  for (double factor : options_.scale_factors) {
    if (factor != 1.0) factors.push_back(factor);
  }
  std::vector<PhysicalPlan> plans =
      ParallelMap(factors.size(), [&](size_t f) {
        CardinalityProvider view(&base, factors[f], /*scale_min_tables=*/2);
        PhysicalPlan plan = context_.optimizer->Optimize(query, &view).plan;
        AnnotateWithProvider(context_, &plan, &base);
        return plan;
      });

  // Serial signature dedup in factor order (identical to the old
  // one-factor-at-a-time walk).
  std::vector<PhysicalPlan> candidates;
  std::set<std::string> seen;
  for (PhysicalPlan& plan : plans) {
    if (!seen.insert(plan.Signature()).second) continue;
    candidates.push_back(std::move(plan));
  }
  return candidates;
}

PhysicalPlan LeroOptimizer::ChoosePlan(const Query& query) {
  std::vector<PhysicalPlan> candidates = Candidates(query);
  LQO_CHECK(!candidates.empty());
  if (!risk_model_.trained() || candidates.size() == 1) {
    return std::move(candidates[0]);  // native fallback.
  }
  // One reusable feature matrix, one batched comparator pass: the scorer
  // evaluates each candidate exactly once instead of once per pairwise
  // comparison.
  feature_scratch_.Reset(PlanFeaturizer::kDim);
  feature_scratch_.Reserve(candidates.size());
  for (const PhysicalPlan& plan : candidates) {
    PlanFeaturizer::FeaturizeInto(plan, feature_scratch_.AppendRow());
  }
  size_t best = risk_model_.PickBestConservative(feature_scratch_, 0);
  return std::move(candidates[best]);
}

std::vector<PhysicalPlan> LeroOptimizer::TrainingCandidates(
    const Query& query) {
  return Candidates(query);
}

void LeroOptimizer::Observe(const Query& query, const PhysicalPlan& plan,
                            double time_units) {
  PlanExperience experience;
  experience.query_key = Subquery{&query, query.AllTables()}.Key();
  experience.features = PlanFeaturizer::Featurize(plan);
  experience.time_units = time_units;
  experience.plan_signature = plan.Signature();
  experience_.Add(std::move(experience));
}

void LeroOptimizer::Retrain() { risk_model_.Train(experience_); }

}  // namespace lqo
