#ifndef LQO_E2E_VALUE_SEARCH_H_
#define LQO_E2E_VALUE_SEARCH_H_

#include <vector>

#include "costmodel/plan_featurizer.h"
#include "e2e/framework.h"
#include "e2e/risk_models.h"

namespace lqo {

/// Machinery shared by Neo [38] and Balsa [69]: plan construction from
/// scratch guided by a learned value model that predicts the final latency
/// reachable from a partial (left-deep) plan.
class ValueSearch {
 public:
  ValueSearch(const E2eContext& context, int max_expansions, int beam_width);

  /// Value-model features of a (partial) plan: baseline-annotated plan
  /// features plus query-context slots (total tables, tables remaining).
  std::vector<double> StateFeatures(const Query& query,
                                    const PhysicalPlan& partial) const;

  /// Number of state features (plan features + 2 query-context slots).
  static constexpr size_t kStateDim = PlanFeaturizer::kDim + 2;

  /// As StateFeatures, into a caller-owned kStateDim buffer (e.g. a
  /// FeatureMatrix row) — no per-state vector allocation.
  void StateFeaturesInto(const Query& query, const PhysicalPlan& partial,
                         double* out) const;

  /// Runs the search under `value_model`; kBestFirst caps expansions
  /// (Neo), kBeam keeps beam_width states per level (Balsa).
  enum class Strategy { kBestFirst, kBeam };
  PhysicalPlan Search(const Query& query,
                      const PointwiseRiskModel& value_model,
                      Strategy strategy) const;

  /// Experience extraction: every join subtree of an executed plan becomes
  /// a training record labeled with the plan's final latency (Neo's
  /// sub-plan credit assignment).
  std::vector<PlanExperience> SubplanExperiences(const Query& query,
                                                 const PhysicalPlan& plan,
                                                 double time_units) const;

 private:
  struct SearchState {
    PhysicalPlan partial;
    double value = 0.0;
  };

  /// All one-table left-deep extensions of a partial plan (3 algorithms per
  /// adjacent table), annotated in parallel against the shared frozen
  /// `cards` provider (one per Search call), in (table, algorithm) order.
  std::vector<PhysicalPlan> Expand(const Query& query,
                                   const PhysicalPlan& partial,
                                   CardinalityProvider* cards) const;

  E2eContext context_;
  int max_expansions_;
  int beam_width_;
};

}  // namespace lqo

#endif  // LQO_E2E_VALUE_SEARCH_H_
