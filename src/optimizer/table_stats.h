#ifndef LQO_OPTIMIZER_TABLE_STATS_H_
#define LQO_OPTIMIZER_TABLE_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "query/predicate.h"
#include "storage/catalog.h"

namespace lqo {

/// ANALYZE-style single-column statistics: equi-depth histogram plus a
/// most-common-values list, mirroring PostgreSQL's pg_stats.
struct ColumnStats {
  int64_t min_value = 0;
  int64_t max_value = 0;
  int64_t num_distinct = 0;
  /// Equi-depth bucket bounds (size = buckets + 1, first = min, last = max).
  std::vector<int64_t> histogram_bounds;
  /// (value, frequency) of the most common values, sorted by frequency
  /// descending. Frequencies are fractions of the table.
  std::vector<std::pair<int64_t, double>> mcvs;
  double mcv_total_freq = 0.0;

  /// Fraction of rows with value <= v, interpolated within buckets.
  double CdfLessEq(int64_t v) const;

  /// Selectivity of an equality / range / IN predicate under the
  /// histogram+MCV model (never exactly 0; clamped to [1e-9, 1]).
  double SelectivityEquals(int64_t v) const;
  double SelectivityRange(int64_t lo, int64_t hi) const;
  double SelectivityIn(const std::vector<int64_t>& values) const;

  /// Dispatch on predicate kind.
  double Selectivity(const Predicate& predicate) const;
};

/// Statistics for one table, plus a uniform row sample used by the
/// sampling-based estimators.
struct TableStatistics {
  uint64_t row_count = 0;
  std::map<std::string, ColumnStats> columns;
  /// Uniform sample of row indices into the base table.
  std::vector<size_t> sample_rows;

  const ColumnStats& ColumnStatsOf(const std::string& column) const;
};

/// Options controlling statistics collection.
struct StatsOptions {
  int histogram_buckets = 100;
  int num_mcvs = 20;
  size_t sample_size = 2000;
  uint64_t seed = 101;
};

/// Holds ANALYZE results for every table of a catalog.
class StatsCatalog {
 public:
  StatsCatalog() = default;

  /// Collects statistics for all tables.
  void Build(const Catalog& catalog, const StatsOptions& options = {});

  const TableStatistics& Of(const std::string& table) const;
  bool built() const { return !tables_.empty(); }

 private:
  std::map<std::string, TableStatistics> tables_;
};

}  // namespace lqo

#endif  // LQO_OPTIMIZER_TABLE_STATS_H_
