#include "optimizer/cost_model.h"

#include <cmath>

#include "common/logging.h"

namespace lqo {
namespace {

double Log2Rows(double rows) { return std::log2(std::max(rows, 2.0)); }

}  // namespace

double AnalyticalCostModel::ScanCost(double table_rows,
                                     int num_predicates) const {
  return table_rows * constants_.scan_row +
         table_rows * static_cast<double>(num_predicates) *
             constants_.predicate_eval;
}

double AnalyticalCostModel::JoinCost(JoinAlgorithm algorithm,
                                     double left_rows, double right_rows,
                                     double output_rows) const {
  switch (algorithm) {
    case JoinAlgorithm::kHashJoin:
      return right_rows * constants_.hash_build_row +
             left_rows * constants_.hash_probe_row +
             output_rows * constants_.output_row;
    case JoinAlgorithm::kNestedLoopJoin:
      return left_rows * right_rows * constants_.nlj_pair +
             output_rows * constants_.output_row;
    case JoinAlgorithm::kMergeJoin:
      return left_rows * Log2Rows(left_rows) * constants_.sort_row_log +
             right_rows * Log2Rows(right_rows) * constants_.sort_row_log +
             (left_rows + right_rows) * constants_.merge_row +
             output_rows * constants_.output_row;
  }
  return 0.0;
}

double AnalyticalCostModel::PlanCost(PhysicalPlan* plan,
                                     CardinalityProvider* cards) const {
  LQO_CHECK(plan != nullptr);
  LQO_CHECK(plan->query != nullptr);
  LQO_CHECK(plan->root != nullptr);
  const Query& query = *plan->query;

  double total = 0.0;
  VisitPlanBottomUpMut(*plan->root, [&](PlanNode& node) {
    if (node.kind == PlanNode::Kind::kScan) {
      const std::string& table_name =
          query.tables()[static_cast<size_t>(node.table_index)].table_name;
      double table_rows =
          static_cast<double>(stats_->Of(table_name).row_count);
      int num_predicates =
          static_cast<int>(query.PredicatesOf(node.table_index).size());
      node.estimated_cardinality =
          cards->Cardinality(Subquery{&query, node.table_set});
      node.estimated_cost = ScanCost(table_rows, num_predicates);
    } else {
      double left_rows = node.left->estimated_cardinality;
      double right_rows = node.right->estimated_cardinality;
      node.estimated_cardinality =
          cards->Cardinality(Subquery{&query, node.table_set});
      node.estimated_cost = JoinCost(node.algorithm, left_rows, right_rows,
                                     node.estimated_cardinality);
    }
    total += node.estimated_cost;
  });
  return total;
}

}  // namespace lqo
