#ifndef LQO_OPTIMIZER_CARDINALITY_INTERFACE_H_
#define LQO_OPTIMIZER_CARDINALITY_INTERFACE_H_

#include <atomic>
#include <map>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "query/query.h"

namespace lqo {

/// The cardinality-estimator component interface of the volcano optimizer
/// (paper Section 2): given a connected sub-query, predict its row count.
/// Every traditional and learned estimator in src/cardinality implements
/// this.
class CardinalityEstimatorInterface {
 public:
  virtual ~CardinalityEstimatorInterface() = default;

  /// Estimated COUNT(*) of the sub-query; must be >= 0.
  ///
  /// Contract: implementations must be re-entrant — no mutable per-call
  /// state after Build()/training, and any randomness seeded per call from
  /// construction-time seeds. The parallel evaluation harness
  /// (EstimatorQErrors) and frozen CardinalityProviders call this
  /// concurrently from worker threads.
  virtual double EstimateSubquery(const Subquery& subquery) = 0;

  /// Estimates for a whole batch of sub-queries, element i matching
  /// EstimateSubquery(subqueries[i]) bit-for-bit. The default fans the
  /// scalar path out over the thread pool (index-addressed slots); learned
  /// estimators override it to featurize the batch into one matrix and run
  /// a single batched model pass.
  virtual std::vector<double> EstimateSubqueryBatch(
      const std::vector<Subquery>& subqueries);

  /// Short identifier used in benchmark tables ("postgres", "mscn", ...).
  virtual std::string Name() const = 0;
};

/// Hit/miss counters of the provider's memo cache (Stats() below).
/// `concurrent_hits` counts hits served under the frozen locking protocol
/// (shared-lock reads plus lost insert races) — the cross-candidate
/// cache-sharing the batched plan costing in src/e2e exists to exploit.
struct CardinalityCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t concurrent_hits = 0;
};

/// Wraps an estimator with the two injection knobs PilotScope exposes to
/// drivers and Lero uses for candidate generation:
///  - per-sub-query overrides (the learned-CE driver pushes these), and
///  - a multiplicative scale applied to estimates of sub-queries with at
///    least `min_tables` tables (Lero's cardinality-scaling knob).
/// Estimates are memoized under the precomputed structural hash
/// Subquery::KeyHash(), so repeat lookups (the DP probes every connected
/// subset many times across candidate splits) never rebuild the canonical
/// string key; the string is only materialized once per miss, to consult
/// the override table.
///
/// Freeze contract (batched candidate costing): a provider is born mutable
/// and single-threaded. Calling Freeze() flips it into a read-mostly mode in
/// which Cardinality() is safe to call from any number of threads
/// concurrently — reads take a shared lock, a miss computes the estimate
/// outside any lock (EstimateSubquery is re-entrant by interface contract)
/// and commits it under an exclusive lock, first writer wins. Because
/// estimates are pure functions of the sub-query, racing writers always
/// carry the same value, so results are bit-for-bit identical at any thread
/// count. The knob setters (InjectOverride / SetScale / ClearOverrides)
/// CHECK-fail on a frozen provider: freeze only after the knobs are set,
/// and freeze exactly once. There is no Unfreeze — build a new provider.
class CardinalityProvider {
 public:
  explicit CardinalityProvider(CardinalityEstimatorInterface* estimator)
      : estimator_(estimator) {}

  /// Scaled read-through view for Lero-style candidate costing: raw
  /// estimates come from (and are shared via) `frozen_base`, which must
  /// already be frozen; this view applies `scale_factor` to sub-queries
  /// with >= `scale_min_tables` tables on top. The view itself is mutable
  /// and single-threaded (each candidate-costing task owns one); only the
  /// base is shared across threads.
  CardinalityProvider(const CardinalityProvider* frozen_base,
                      double scale_factor, int scale_min_tables);

  /// Forces the cardinality of the sub-query identified by `key`
  /// (Subquery::Key()). Disallowed once frozen.
  void InjectOverride(const std::string& key, double cardinality);

  /// Applies `factor` to estimates of sub-queries with >= min_tables tables.
  /// Disallowed once frozen.
  void SetScale(double factor, int min_tables);

  /// Resets overrides and scaling. Disallowed once frozen.
  void ClearOverrides();

  /// Flips the provider into the concurrent read-mostly mode documented
  /// above. Idempotent.
  void Freeze() { frozen_.store(true, std::memory_order_release); }
  bool frozen() const { return frozen_.load(std::memory_order_acquire); }

  /// Final (possibly overridden/scaled) estimate for the sub-query.
  double Cardinality(const Subquery& subquery);

  /// Memo-cache counters since construction (not reset by ClearOverrides).
  /// Under concurrent frozen access the hit/miss split may vary run to run
  /// (two threads can miss the same key simultaneously); hits + misses ==
  /// number of Cardinality() calls always holds.
  CardinalityCacheStats Stats() const;

  CardinalityEstimatorInterface* estimator() const { return estimator_; }

 private:
  /// Estimate before the final >= 1 clamp (what scaled views compose on).
  double Raw(const Subquery& subquery);
  /// Cache-miss path: override table, then base/estimator, then scaling.
  double Compute(const Subquery& subquery) const;

  CardinalityEstimatorInterface* estimator_ = nullptr;
  /// Non-null for scaled views; raw estimates delegate to the (frozen) base.
  const CardinalityProvider* base_ = nullptr;
  std::map<std::string, double> overrides_;
  double scale_factor_ = 1.0;
  int scale_min_tables_ = 0;
  /// KeyHash() is already well mixed; identity-hashing it avoids a second
  /// mixing pass inside the map.
  struct IdentityHash {
    size_t operator()(uint64_t h) const { return static_cast<size_t>(h); }
  };
  std::unordered_map<uint64_t, double, IdentityHash> cache_
      LQO_GUARDED_BY(mutex_);
  // guards: cache_ — shared-lock reads, exclusive-lock inserts; engaged only
  // while frozen (the mutable single-threaded phase touches cache_ bare).
  mutable std::shared_mutex mutex_;
  // Release-store in Freeze(), acquire-load in Cardinality(): publishes the
  // single-threaded-phase cache/override contents to concurrent readers.
  std::atomic<bool> frozen_{false};
  std::atomic<uint64_t> hits_{0};             // relaxed: monotonic stat only
  std::atomic<uint64_t> misses_{0};           // relaxed: monotonic stat only
  std::atomic<uint64_t> concurrent_hits_{0};  // relaxed: monotonic stat only
};

}  // namespace lqo

#endif  // LQO_OPTIMIZER_CARDINALITY_INTERFACE_H_
