#ifndef LQO_OPTIMIZER_CARDINALITY_INTERFACE_H_
#define LQO_OPTIMIZER_CARDINALITY_INTERFACE_H_

#include <map>
#include <string>
#include <unordered_map>

#include "query/query.h"

namespace lqo {

/// The cardinality-estimator component interface of the volcano optimizer
/// (paper Section 2): given a connected sub-query, predict its row count.
/// Every traditional and learned estimator in src/cardinality implements
/// this.
class CardinalityEstimatorInterface {
 public:
  virtual ~CardinalityEstimatorInterface() = default;

  /// Estimated COUNT(*) of the sub-query; must be >= 0.
  ///
  /// Contract: implementations must be re-entrant — no mutable per-call
  /// state after Build()/training, and any randomness seeded per call from
  /// construction-time seeds. The parallel evaluation harness
  /// (EstimatorQErrors) calls this concurrently from worker threads.
  virtual double EstimateSubquery(const Subquery& subquery) = 0;

  /// Short identifier used in benchmark tables ("postgres", "mscn", ...).
  virtual std::string Name() const = 0;
};

/// Hit/miss counters of the provider's memo cache (Stats() below).
struct CardinalityCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Wraps an estimator with the two injection knobs PilotScope exposes to
/// drivers and Lero uses for candidate generation:
///  - per-sub-query overrides (the learned-CE driver pushes these), and
///  - a multiplicative scale applied to estimates of sub-queries with at
///    least `min_tables` tables (Lero's cardinality-scaling knob).
/// Estimates are memoized under the precomputed structural hash
/// Subquery::KeyHash(), so repeat lookups (the DP probes every connected
/// subset many times across candidate splits) never rebuild the canonical
/// string key; the string is only materialized once per miss, to consult
/// the override table.
class CardinalityProvider {
 public:
  explicit CardinalityProvider(CardinalityEstimatorInterface* estimator)
      : estimator_(estimator) {}

  /// Forces the cardinality of the sub-query identified by `key`
  /// (Subquery::Key()).
  void InjectOverride(const std::string& key, double cardinality) {
    overrides_[key] = cardinality;
    cache_.clear();
  }

  /// Applies `factor` to estimates of sub-queries with >= min_tables tables.
  void SetScale(double factor, int min_tables) {
    scale_factor_ = factor;
    scale_min_tables_ = min_tables;
    cache_.clear();
  }

  void ClearOverrides() {
    overrides_.clear();
    scale_factor_ = 1.0;
    scale_min_tables_ = 0;
    cache_.clear();
  }

  /// Final (possibly overridden/scaled) estimate for the sub-query.
  double Cardinality(const Subquery& subquery);

  /// Memo-cache counters since construction (not reset by ClearOverrides).
  const CardinalityCacheStats& Stats() const { return stats_; }

  CardinalityEstimatorInterface* estimator() const { return estimator_; }

 private:
  CardinalityEstimatorInterface* estimator_;
  std::map<std::string, double> overrides_;
  double scale_factor_ = 1.0;
  int scale_min_tables_ = 0;
  /// KeyHash() is already well mixed; identity-hashing it avoids a second
  /// mixing pass inside the map.
  struct IdentityHash {
    size_t operator()(uint64_t h) const { return static_cast<size_t>(h); }
  };
  std::unordered_map<uint64_t, double, IdentityHash> cache_;
  CardinalityCacheStats stats_;
};

}  // namespace lqo

#endif  // LQO_OPTIMIZER_CARDINALITY_INTERFACE_H_
