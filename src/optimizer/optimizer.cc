#include "optimizer/optimizer.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

std::vector<JoinAlgorithm> HintSet::AllowedAlgorithms() const {
  std::vector<JoinAlgorithm> allowed;
  if (enable_hash_join) allowed.push_back(JoinAlgorithm::kHashJoin);
  if (enable_nested_loop) allowed.push_back(JoinAlgorithm::kNestedLoopJoin);
  if (enable_merge_join) allowed.push_back(JoinAlgorithm::kMergeJoin);
  if (allowed.empty()) {
    allowed = {JoinAlgorithm::kHashJoin, JoinAlgorithm::kNestedLoopJoin,
               JoinAlgorithm::kMergeJoin};
  }
  return allowed;
}

namespace {

struct Entry {
  double cost = std::numeric_limits<double>::infinity();
  double card = 0.0;
  std::unique_ptr<PlanNode> plan;
};

bool HasCrossingJoin(const Query& query, TableSet left, TableSet right) {
  for (const QueryJoin& j : query.joins()) {
    bool l_in_left = ContainsTable(left, j.left_table);
    bool l_in_right = ContainsTable(right, j.left_table);
    bool r_in_left = ContainsTable(left, j.right_table);
    bool r_in_right = ContainsTable(right, j.right_table);
    if ((l_in_left && r_in_right) || (l_in_right && r_in_left)) return true;
  }
  return false;
}

// The AnalyticalCostModel node formulas are required for enumeration; the
// optimizer's cost model must be (or derive from) it.
const AnalyticalCostModel& AsAnalytical(const CostModelInterface& model) {
  const auto* analytical = dynamic_cast<const AnalyticalCostModel*>(&model);
  LQO_CHECK(analytical != nullptr)
      << "Optimizer enumeration requires an AnalyticalCostModel (got "
      << model.Name() << ")";
  return *analytical;
}

}  // namespace

PlannerResult Optimizer::Optimize(const Query& query,
                                  CardinalityProvider* cards,
                                  const HintSet& hints) const {
  LQO_CHECK(query.num_tables() > 0);
  LQO_CHECK(query.IsConnected(query.AllTables()))
      << "query join graph must be connected: " << query.ToString();
  if (!hints.leading.empty()) {
    return OptimizeWithLeading(query, cards, hints);
  }
  const AnalyticalCostModel& model = AsAnalytical(*cost_model_);
  std::vector<JoinAlgorithm> allowed = hints.AllowedAlgorithms();

  int n = query.num_tables();
  std::unordered_map<TableSet, Entry> best;
  best.reserve(1u << n);
  PlannerResult result;

  // Leaves.
  for (int t = 0; t < n; ++t) {
    Entry entry;
    TableSet set = TableBit(t);
    entry.card = cards->Cardinality(Subquery{&query, set});
    const std::string& name = query.tables()[static_cast<size_t>(t)].table_name;
    double raw_rows = static_cast<double>(stats_->Of(name).row_count);
    entry.cost = model.ScanCost(
        raw_rows, static_cast<int>(query.PredicatesOf(t).size()));
    entry.plan = MakeScanNode(t);
    entry.plan->estimated_cardinality = entry.card;
    entry.plan->estimated_cost = entry.cost;
    best.emplace(set, std::move(entry));
  }

  // Connected subsets grouped by size. Cardinalities are resolved serially
  // up front (an *unfrozen* provider is single-threaded by contract —
  // frozen ones allow concurrent reads, see cardinality_interface.h — and
  // estimator call order stays identical to the serial planner); the DP then
  // runs level-synchronously: subsets of size k only split into strictly
  // smaller subsets, so all of level k can be solved in parallel against
  // the read-only `best` table of levels < k. Entries are committed in
  // ascending-subset order afterwards, keeping the walk bit-for-bit equal
  // to the serial one.
  TableSet all = query.AllTables();
  std::vector<std::vector<TableSet>> levels(static_cast<size_t>(n) + 1);
  std::unordered_map<TableSet, double> subset_card;
  for (TableSet s = 1; s <= all; ++s) {
    int size = PopCount(s);
    if (size < 2) continue;
    if (!query.IsConnected(s)) continue;
    levels[static_cast<size_t>(size)].push_back(s);
    subset_card.emplace(s, cards->Cardinality(Subquery{&query, s}));
  }

  struct SubsetResult {
    Entry entry;
    uint64_t combinations = 0;
  };
  for (size_t k = 2; k <= static_cast<size_t>(n); ++k) {
    const std::vector<TableSet>& level = levels[k];
    auto solve_subset = [&](size_t idx) {
      TableSet s = level[idx];
      double card_s = subset_card.at(s);
      SubsetResult out;
      out.entry.card = card_s;

      for (TableSet left = (s - 1) & s; left != 0;
           left = (left - 1) & s) {
        TableSet right = s & ~left;
        if (!options_.bushy && PopCount(right) != 1) continue;
        auto left_it = best.find(left);
        auto right_it = best.find(right);
        if (left_it == best.end() || right_it == best.end()) continue;
        if (!HasCrossingJoin(query, left, right)) continue;

        for (JoinAlgorithm algo : allowed) {
          ++out.combinations;
          double join_cost = model.JoinCost(algo, left_it->second.card,
                                            right_it->second.card,
                                            card_s);
          double total =
              left_it->second.cost + right_it->second.cost + join_cost;
          if (total < out.entry.cost) {
            out.entry.cost = total;
            out.entry.plan =
                MakeJoinNode(algo, left_it->second.plan->Clone(),
                             right_it->second.plan->Clone());
            out.entry.plan->estimated_cardinality = card_s;
            out.entry.plan->estimated_cost = join_cost;
          }
        }
      }
      return out;
    };
    // Small levels are solved inline: a handful of subsets costs less to
    // compute than to schedule. The cutoff depends only on the level size,
    // so both paths yield identical entries.
    constexpr size_t kParallelLevelSize = 16;
    std::vector<SubsetResult> solved;
    if (level.size() >= kParallelLevelSize) {
      solved = ParallelMap(level.size(), solve_subset);
    } else {
      solved.reserve(level.size());
      for (size_t idx = 0; idx < level.size(); ++idx) {
        solved.push_back(solve_subset(idx));
      }
    }
    for (size_t idx = 0; idx < level.size(); ++idx) {
      result.combinations_evaluated += solved[idx].combinations;
      if (solved[idx].entry.plan != nullptr) {
        best.emplace(level[idx], std::move(solved[idx].entry));
      }
    }
  }

  auto final_it = best.find(all);
  LQO_CHECK(final_it != best.end()) << "DP failed to cover the query";
  result.plan.query = &query;
  result.plan.root = std::move(final_it->second.plan);
  result.estimated_cost = final_it->second.cost;
  return result;
}

PlannerResult Optimizer::OptimizeGreedy(const Query& query,
                                        CardinalityProvider* cards,
                                        const HintSet& hints) const {
  LQO_CHECK(query.num_tables() > 0);
  LQO_CHECK(query.IsConnected(query.AllTables()));
  const AnalyticalCostModel& model = AsAnalytical(*cost_model_);
  std::vector<JoinAlgorithm> allowed = hints.AllowedAlgorithms();
  PlannerResult result;

  std::vector<Entry> components;
  for (int t = 0; t < query.num_tables(); ++t) {
    Entry entry;
    TableSet set = TableBit(t);
    entry.card = cards->Cardinality(Subquery{&query, set});
    const std::string& name = query.tables()[static_cast<size_t>(t)].table_name;
    entry.cost = model.ScanCost(
        static_cast<double>(stats_->Of(name).row_count),
        static_cast<int>(query.PredicatesOf(t).size()));
    entry.plan = MakeScanNode(t);
    entry.plan->estimated_cardinality = entry.card;
    entry.plan->estimated_cost = entry.cost;
    components.push_back(std::move(entry));
  }

  while (components.size() > 1) {
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_i = 0, best_j = 0;
    JoinAlgorithm best_algo = JoinAlgorithm::kHashJoin;
    double best_card = 0.0;

    for (size_t i = 0; i < components.size(); ++i) {
      for (size_t j = 0; j < components.size(); ++j) {
        if (i == j) continue;
        TableSet li = components[i].plan->table_set;
        TableSet rj = components[j].plan->table_set;
        if (!HasCrossingJoin(query, li, rj)) continue;
        double card =
            cards->Cardinality(Subquery{&query, li | rj});
        for (JoinAlgorithm algo : allowed) {
          ++result.combinations_evaluated;
          double cost = model.JoinCost(algo, components[i].card,
                                       components[j].card, card);
          if (cost < best_cost) {
            best_cost = cost;
            best_i = i;
            best_j = j;
            best_algo = algo;
            best_card = card;
          }
        }
      }
    }
    LQO_CHECK(best_cost < std::numeric_limits<double>::infinity())
        << "greedy found no joinable pair (disconnected query?)";

    Entry merged;
    merged.card = best_card;
    merged.cost =
        components[best_i].cost + components[best_j].cost + best_cost;
    merged.plan = MakeJoinNode(best_algo, std::move(components[best_i].plan),
                               std::move(components[best_j].plan));
    merged.plan->estimated_cardinality = best_card;
    merged.plan->estimated_cost = best_cost;

    size_t hi = std::max(best_i, best_j), lo = std::min(best_i, best_j);
    components.erase(components.begin() + static_cast<long>(hi));
    components.erase(components.begin() + static_cast<long>(lo));
    components.push_back(std::move(merged));
  }

  result.plan.query = &query;
  result.estimated_cost = components[0].cost;
  result.plan.root = std::move(components[0].plan);
  return result;
}

PlannerResult Optimizer::OptimizeWithLeading(const Query& query,
                                             CardinalityProvider* cards,
                                             const HintSet& hints) const {
  const AnalyticalCostModel& model = AsAnalytical(*cost_model_);
  std::vector<JoinAlgorithm> allowed = hints.AllowedAlgorithms();
  PlannerResult result;

  auto scan_entry = [&](int t) {
    Entry entry;
    entry.card = cards->Cardinality(Subquery{&query, TableBit(t)});
    const std::string& name = query.tables()[static_cast<size_t>(t)].table_name;
    entry.cost = model.ScanCost(
        static_cast<double>(stats_->Of(name).row_count),
        static_cast<int>(query.PredicatesOf(t).size()));
    entry.plan = MakeScanNode(t);
    entry.plan->estimated_cardinality = entry.card;
    entry.plan->estimated_cost = entry.cost;
    return entry;
  };

  LQO_CHECK(!hints.leading.empty());
  Entry current = scan_entry(hints.leading[0]);

  auto append_table = [&](Entry current_entry, int table) {
    TableSet merged_set = current_entry.plan->table_set | TableBit(table);
    LQO_CHECK(HasCrossingJoin(query, current_entry.plan->table_set,
                              TableBit(table)))
        << "leading hint joins unconnected table " << table;
    Entry next_scan = scan_entry(table);
    double card = cards->Cardinality(Subquery{&query, merged_set});
    double best_cost = std::numeric_limits<double>::infinity();
    JoinAlgorithm best_algo = JoinAlgorithm::kHashJoin;
    for (JoinAlgorithm algo : allowed) {
      ++result.combinations_evaluated;
      double cost =
          model.JoinCost(algo, current_entry.card, next_scan.card, card);
      if (cost < best_cost) {
        best_cost = cost;
        best_algo = algo;
      }
    }
    Entry merged;
    merged.card = card;
    merged.cost = current_entry.cost + next_scan.cost + best_cost;
    merged.plan = MakeJoinNode(best_algo, std::move(current_entry.plan),
                               std::move(next_scan.plan));
    merged.plan->estimated_cardinality = card;
    merged.plan->estimated_cost = best_cost;
    return merged;
  };

  for (size_t i = 1; i < hints.leading.size(); ++i) {
    current = append_table(std::move(current), hints.leading[i]);
  }

  // Greedy completion over the remaining tables.
  while (PopCount(current.plan->table_set) < query.num_tables()) {
    int best_table = -1;
    double best_incremental = std::numeric_limits<double>::infinity();
    for (int t = 0; t < query.num_tables(); ++t) {
      if (ContainsTable(current.plan->table_set, t)) continue;
      if (!HasCrossingJoin(query, current.plan->table_set, TableBit(t))) {
        continue;
      }
      double card = cards->Cardinality(
          Subquery{&query, current.plan->table_set | TableBit(t)});
      double t_card = cards->Cardinality(Subquery{&query, TableBit(t)});
      for (JoinAlgorithm algo : allowed) {
        ++result.combinations_evaluated;
        double cost = model.JoinCost(algo, current.card, t_card, card);
        if (cost < best_incremental) {
          best_incremental = cost;
          best_table = t;
        }
      }
    }
    LQO_CHECK_GE(best_table, 0);
    current = append_table(std::move(current), best_table);
  }

  result.plan.query = &query;
  result.estimated_cost = current.cost;
  result.plan.root = std::move(current.plan);
  return result;
}

}  // namespace lqo
