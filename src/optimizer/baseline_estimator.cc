#include "optimizer/baseline_estimator.h"

#include <algorithm>

#include "common/logging.h"

namespace lqo {

double BaselineCardinalityEstimator::TableSelectivity(const Query& query,
                                                      int table_index) const {
  const std::string& table_name =
      query.tables()[static_cast<size_t>(table_index)].table_name;
  const TableStatistics& stats = stats_->Of(table_name);
  double selectivity = 1.0;
  for (const Predicate& p : query.PredicatesOf(table_index)) {
    selectivity *= stats.ColumnStatsOf(p.column).Selectivity(p);
  }
  return selectivity;
}

double BaselineCardinalityEstimator::EstimateSubquery(
    const Subquery& subquery) {
  const Query& query = *subquery.query;

  // Product of filtered base-table cardinalities.
  double card = 1.0;
  for (int t = 0; t < query.num_tables(); ++t) {
    if (!ContainsTable(subquery.tables, t)) continue;
    const std::string& name =
        query.tables()[static_cast<size_t>(t)].table_name;
    double rows = static_cast<double>(stats_->Of(name).row_count);
    card *= rows * TableSelectivity(query, t);
  }

  // One independence-assumed selectivity factor per induced join conjunct.
  for (const QueryJoin& join : query.JoinsWithin(subquery.tables)) {
    const std::string& left_name =
        query.tables()[static_cast<size_t>(join.left_table)].table_name;
    const std::string& right_name =
        query.tables()[static_cast<size_t>(join.right_table)].table_name;
    double ndv_left = static_cast<double>(
        stats_->Of(left_name).ColumnStatsOf(join.left_column).num_distinct);
    double ndv_right = static_cast<double>(
        stats_->Of(right_name).ColumnStatsOf(join.right_column).num_distinct);
    card /= std::max({ndv_left, ndv_right, 1.0});
  }
  return std::max(card, 1.0);
}

}  // namespace lqo
