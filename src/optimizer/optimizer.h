#ifndef LQO_OPTIMIZER_OPTIMIZER_H_
#define LQO_OPTIMIZER_OPTIMIZER_H_

#include <string>
#include <vector>

#include "engine/plan.h"
#include "optimizer/cardinality_interface.h"
#include "optimizer/cost_model.h"
#include "optimizer/table_stats.h"

namespace lqo {

/// Planner hints, mirroring the steering knobs the end-to-end learned
/// optimizers use: Bao toggles physical operators (enable_* GUCs), HyperQO
/// forces leading join prefixes (pg_hint_plan LEADING).
struct HintSet {
  std::string name = "default";
  bool enable_hash_join = true;
  bool enable_nested_loop = true;
  bool enable_merge_join = true;
  /// When non-empty: the first tables (query indices) joined, left-deep, in
  /// this order; remaining tables appended greedily.
  std::vector<int> leading;

  /// Allowed algorithms; falls back to all three if every flag is off.
  std::vector<JoinAlgorithm> AllowedAlgorithms() const;
};

/// The plan-enumerator component of the volcano optimizer.
struct PlannerResult {
  PhysicalPlan plan;
  double estimated_cost = 0.0;
  /// (L, R, algorithm) combinations costed — the deterministic proxy for
  /// planning time used by the join-order benchmarks.
  uint64_t combinations_evaluated = 0;
};

struct OptimizerOptions {
  /// true: bushy DP over connected subgraphs; false: left-deep only.
  bool bushy = true;
};

/// Traditional cost-based optimizer: dynamic programming (dpsize over
/// connected subgraphs, cross products forbidden) and a GOO-style greedy
/// fallback, with hint and cardinality-injection knobs.
class Optimizer {
 public:
  Optimizer(const StatsCatalog* stats, const CostModelInterface* cost_model,
            OptimizerOptions options = {})
      : stats_(stats), cost_model_(cost_model), options_(options) {}

  /// Exhaustive DP plan (optimal under the cost model and cardinalities).
  /// With hints.leading non-empty, falls back to the forced-prefix
  /// construction instead of DP.
  PlannerResult Optimize(const Query& query, CardinalityProvider* cards,
                         const HintSet& hints = HintSet()) const;

  /// Greedy operator ordering (GOO): repeatedly joins the cheapest
  /// connected pair of components.
  PlannerResult OptimizeGreedy(const Query& query, CardinalityProvider* cards,
                               const HintSet& hints = HintSet()) const;

  const CostModelInterface& cost_model() const { return *cost_model_; }
  const StatsCatalog& stats() const { return *stats_; }

 private:
  PlannerResult OptimizeWithLeading(const Query& query,
                                    CardinalityProvider* cards,
                                    const HintSet& hints) const;

  const StatsCatalog* stats_;
  const CostModelInterface* cost_model_;
  OptimizerOptions options_;
};

}  // namespace lqo

#endif  // LQO_OPTIMIZER_OPTIMIZER_H_
