#include "optimizer/table_stats.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"

namespace lqo {
namespace {

constexpr double kMinSelectivity = 1e-9;

double Clamp01(double v) {
  return std::clamp(v, kMinSelectivity, 1.0);
}

}  // namespace

double ColumnStats::CdfLessEq(int64_t v) const {
  if (histogram_bounds.size() < 2) return v >= max_value ? 1.0 : 0.0;
  if (v < histogram_bounds.front()) return 0.0;
  if (v >= histogram_bounds.back()) return 1.0;
  // Largest bucket index i with bounds[i] <= v.
  auto it = std::upper_bound(histogram_bounds.begin(), histogram_bounds.end(),
                             v);
  size_t i = static_cast<size_t>(it - histogram_bounds.begin()) - 1;
  size_t buckets = histogram_bounds.size() - 1;
  double lo = static_cast<double>(histogram_bounds[i]);
  double hi = static_cast<double>(histogram_bounds[i + 1]);
  double within =
      hi > lo ? (static_cast<double>(v) - lo + 1.0) / (hi - lo + 1.0) : 1.0;
  within = std::clamp(within, 0.0, 1.0);
  return (static_cast<double>(i) + within) / static_cast<double>(buckets);
}

double ColumnStats::SelectivityEquals(int64_t v) const {
  if (v < min_value || v > max_value) return kMinSelectivity;
  for (const auto& [value, freq] : mcvs) {
    if (value == v) return Clamp01(freq);
  }
  int64_t remaining_distinct =
      std::max<int64_t>(1, num_distinct - static_cast<int64_t>(mcvs.size()));
  return Clamp01((1.0 - mcv_total_freq) /
                 static_cast<double>(remaining_distinct));
}

double ColumnStats::SelectivityRange(int64_t lo, int64_t hi) const {
  if (lo > hi || hi < min_value || lo > max_value) return kMinSelectivity;
  double cdf_hi = CdfLessEq(hi);
  double cdf_lo = lo <= min_value ? 0.0 : CdfLessEq(lo - 1);
  return Clamp01(cdf_hi - cdf_lo);
}

double ColumnStats::SelectivityIn(const std::vector<int64_t>& values) const {
  double total = 0.0;
  for (int64_t v : values) total += SelectivityEquals(v);
  return Clamp01(total);
}

double ColumnStats::Selectivity(const Predicate& predicate) const {
  switch (predicate.kind) {
    case PredicateKind::kEquals:
      return SelectivityEquals(predicate.value);
    case PredicateKind::kRange:
      return SelectivityRange(predicate.lo, predicate.hi);
    case PredicateKind::kIn:
      return SelectivityIn(predicate.in_values);
  }
  return kMinSelectivity;
}

const ColumnStats& TableStatistics::ColumnStatsOf(
    const std::string& column) const {
  auto it = columns.find(column);
  LQO_CHECK(it != columns.end()) << "no stats for column " << column;
  return it->second;
}

void StatsCatalog::Build(const Catalog& catalog, const StatsOptions& options) {
  tables_.clear();
  Rng rng(options.seed);
  for (const std::string& name : catalog.table_names()) {
    const Table& table = **catalog.GetTable(name);
    TableStatistics stats;
    stats.row_count = table.num_rows();

    for (const Column& col : table.columns()) {
      ColumnStats cs;
      cs.min_value = col.min_value;
      cs.max_value = col.max_value;
      cs.num_distinct = col.num_distinct;

      // Frequencies for MCVs.
      std::unordered_map<int64_t, int64_t> counts;
      for (int64_t v : col.data) ++counts[v];
      std::vector<std::pair<int64_t, int64_t>> by_count(counts.begin(),
                                                        counts.end());
      std::sort(by_count.begin(), by_count.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      size_t num_mcvs = std::min<size_t>(
          static_cast<size_t>(options.num_mcvs), by_count.size());
      // Only keep MCVs if the column is not unique-ish (PostgreSQL skips
      // MCVs for nearly-unique columns).
      if (cs.num_distinct <
          static_cast<int64_t>(table.num_rows()) * 9 / 10) {
        for (size_t i = 0; i < num_mcvs; ++i) {
          double freq = static_cast<double>(by_count[i].second) /
                        static_cast<double>(table.num_rows());
          cs.mcvs.emplace_back(by_count[i].first, freq);
          cs.mcv_total_freq += freq;
        }
      }

      // Equi-depth histogram over all values.
      std::vector<int64_t> sorted = col.data;
      std::sort(sorted.begin(), sorted.end());
      size_t buckets = std::min<size_t>(
          static_cast<size_t>(options.histogram_buckets),
          std::max<size_t>(1, sorted.size()));
      cs.histogram_bounds.resize(buckets + 1);
      for (size_t b = 0; b <= buckets; ++b) {
        size_t idx = b * (sorted.size() - 1) / buckets;
        cs.histogram_bounds[b] = sorted[idx];
      }
      stats.columns.emplace(col.name, std::move(cs));
    }

    size_t sample_size = std::min(options.sample_size, table.num_rows());
    stats.sample_rows = rng.SampleWithoutReplacement(table.num_rows(),
                                                     sample_size);
    std::sort(stats.sample_rows.begin(), stats.sample_rows.end());
    tables_.emplace(name, std::move(stats));
  }
}

const TableStatistics& StatsCatalog::Of(const std::string& table) const {
  auto it = tables_.find(table);
  LQO_CHECK(it != tables_.end()) << "no statistics for table " << table;
  return it->second;
}

}  // namespace lqo
