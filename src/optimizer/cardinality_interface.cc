#include "optimizer/cardinality_interface.h"

#include <algorithm>

#include "common/logging.h"

namespace lqo {

double CardinalityProvider::Cardinality(const Subquery& subquery) {
  std::string key = subquery.Key();
  auto cached = cache_.find(key);
  if (cached != cache_.end()) return cached->second;

  double value;
  auto it = overrides_.find(key);
  if (it != overrides_.end()) {
    value = it->second;
  } else {
    LQO_CHECK(estimator_ != nullptr)
        << "CardinalityProvider has no estimator and no override for " << key;
    value = estimator_->EstimateSubquery(subquery);
    if (PopCount(subquery.tables) >= scale_min_tables_ &&
        scale_min_tables_ > 0) {
      value *= scale_factor_;
    }
  }
  value = std::max(value, 1.0);
  cache_[key] = value;
  return value;
}

}  // namespace lqo
