#include "optimizer/cardinality_interface.h"

#include <algorithm>

#include "common/logging.h"

namespace lqo {

double CardinalityProvider::Cardinality(const Subquery& subquery) {
  uint64_t hash = subquery.KeyHash();
  auto cached = cache_.find(hash);
  if (cached != cache_.end()) {
    ++stats_.hits;
    return cached->second;
  }
  ++stats_.misses;

  double value;
  auto it = overrides_.empty() ? overrides_.end()
                               : overrides_.find(subquery.Key());
  if (it != overrides_.end()) {
    value = it->second;
  } else {
    LQO_CHECK(estimator_ != nullptr)
        << "CardinalityProvider has no estimator and no override for "
        << subquery.Key();
    value = estimator_->EstimateSubquery(subquery);
    if (PopCount(subquery.tables) >= scale_min_tables_ &&
        scale_min_tables_ > 0) {
      value *= scale_factor_;
    }
  }
  value = std::max(value, 1.0);
  cache_[hash] = value;
  return value;
}

}  // namespace lqo
