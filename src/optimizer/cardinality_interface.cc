#include "optimizer/cardinality_interface.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace lqo {

std::vector<double> CardinalityEstimatorInterface::EstimateSubqueryBatch(
    const std::vector<Subquery>& subqueries) {
  // Scalar fallback, morsel-parallel: EstimateSubquery is re-entrant by
  // contract, and ParallelMap writes index-addressed slots, so the result
  // vector is identical at any thread count.
  return ParallelMap(subqueries.size(), [&](size_t i) {
    return EstimateSubquery(subqueries[i]);
  });
}

CardinalityProvider::CardinalityProvider(const CardinalityProvider* frozen_base,
                                         double scale_factor,
                                         int scale_min_tables)
    : estimator_(frozen_base == nullptr ? nullptr : frozen_base->estimator_),
      base_(frozen_base),
      scale_factor_(scale_factor),
      scale_min_tables_(scale_min_tables) {
  LQO_CHECK(base_ != nullptr);
  LQO_CHECK(base_->frozen())
      << "scaled views require a frozen base (shared across costing tasks)";
}

void CardinalityProvider::InjectOverride(const std::string& key,
                                         double cardinality) {
  LQO_CHECK(!frozen()) << "InjectOverride on a frozen CardinalityProvider";
  overrides_[key] = cardinality;
  // locked-by: mutex_(the !frozen() check above pins this to the
  // single-threaded mutable phase; the lock only engages once frozen)
  cache_.clear();
}

void CardinalityProvider::SetScale(double factor, int min_tables) {
  LQO_CHECK(!frozen()) << "SetScale on a frozen CardinalityProvider";
  scale_factor_ = factor;
  scale_min_tables_ = min_tables;
  // locked-by: mutex_(the !frozen() check above pins this to the
  // single-threaded mutable phase; the lock only engages once frozen)
  cache_.clear();
}

void CardinalityProvider::ClearOverrides() {
  LQO_CHECK(!frozen()) << "ClearOverrides on a frozen CardinalityProvider";
  overrides_.clear();
  scale_factor_ = 1.0;
  scale_min_tables_ = 0;
  // locked-by: mutex_(the !frozen() check above pins this to the
  // single-threaded mutable phase; the lock only engages once frozen)
  cache_.clear();
}

CardinalityCacheStats CardinalityProvider::Stats() const {
  CardinalityCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.concurrent_hits = concurrent_hits_.load(std::memory_order_relaxed);
  return stats;
}

double CardinalityProvider::Compute(const Subquery& subquery) const {
  auto it = overrides_.empty() ? overrides_.end()
                               : overrides_.find(subquery.Key());
  if (it != overrides_.end()) return it->second;

  double value;
  if (base_ != nullptr) {
    // const_cast is sound: the base is frozen, so Raw() only mutates its
    // cache under the frozen (locked) protocol.
    value = const_cast<CardinalityProvider*>(base_)->Raw(subquery);
  } else {
    LQO_CHECK(estimator_ != nullptr)
        << "CardinalityProvider has no estimator and no override for "
        << subquery.Key();
    value = estimator_->EstimateSubquery(subquery);
  }
  if (PopCount(subquery.tables) >= scale_min_tables_ &&
      scale_min_tables_ > 0) {
    value *= scale_factor_;
  }
  return value;
}

double CardinalityProvider::Raw(const Subquery& subquery) {
  uint64_t hash = subquery.KeyHash();
  if (frozen()) {
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      auto cached = cache_.find(hash);
      if (cached != cache_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        concurrent_hits_.fetch_add(1, std::memory_order_relaxed);
        return cached->second;
      }
    }
    // Estimates are pure functions of the sub-query, so computing outside
    // the lock and letting the first writer win keeps results bit-for-bit
    // identical regardless of which racing thread commits.
    double value = Compute(subquery);
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto [it, inserted] = cache_.emplace(hash, value);
    if (inserted) {
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // A racing thread populated the entry between our shared-lock miss
      // and this exclusive lock; that is still a hit served under the
      // frozen protocol, so both counters advance and misses_ stays equal
      // to the number of distinct keys.
      hits_.fetch_add(1, std::memory_order_relaxed);
      concurrent_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second;
  }

  // Unfrozen path: by contract the provider is still in its single-threaded
  // mutable phase, so cache_ is touched bare.
  // locked-by: mutex_(unfrozen == single-threaded by contract; concurrent
  // callers must Freeze() first, which routes them through the locked path)
  if (auto cached = cache_.find(hash); cached != cache_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return cached->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  double value = Compute(subquery);
  // locked-by: mutex_(unfrozen == single-threaded by contract, as above)
  cache_[hash] = value;
  return value;
}

double CardinalityProvider::Cardinality(const Subquery& subquery) {
  return std::max(Raw(subquery), 1.0);
}

}  // namespace lqo
