#ifndef LQO_OPTIMIZER_COST_MODEL_H_
#define LQO_OPTIMIZER_COST_MODEL_H_

#include "engine/cost_constants.h"
#include "engine/plan.h"
#include "optimizer/cardinality_interface.h"
#include "optimizer/table_stats.h"

namespace lqo {

/// The cost-model component interface of the volcano optimizer. Given a
/// physical plan and a cardinality source, predict its execution time.
class CostModelInterface {
 public:
  virtual ~CostModelInterface() = default;

  /// Total predicted cost. Also annotates every node's
  /// estimated_cardinality / estimated_cost in place.
  virtual double PlanCost(PhysicalPlan* plan,
                          CardinalityProvider* cards) const = 0;

  virtual std::string Name() const = 0;
};

/// The native analytical cost model: linear per-operator formulas using the
/// shared CostConstants, with *no knowledge* of the executor's skew, cache
/// and spill effects. Its error relative to true time units is structural,
/// exactly the gap learned cost models close.
class AnalyticalCostModel : public CostModelInterface {
 public:
  AnalyticalCostModel(const StatsCatalog* stats,
                      CostConstants constants = DefaultCostConstants())
      : stats_(stats), constants_(constants) {}

  double PlanCost(PhysicalPlan* plan,
                  CardinalityProvider* cards) const override;
  std::string Name() const override { return "analytical"; }

  /// Node-local formulas, exposed for the calibrated (BASE-style) model.
  double ScanCost(double table_rows, int num_predicates) const;
  double JoinCost(JoinAlgorithm algorithm, double left_rows,
                  double right_rows, double output_rows) const;

  const CostConstants& constants() const { return constants_; }

 private:
  const StatsCatalog* stats_;
  CostConstants constants_;
};

}  // namespace lqo

#endif  // LQO_OPTIMIZER_COST_MODEL_H_
