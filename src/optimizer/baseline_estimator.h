#ifndef LQO_OPTIMIZER_BASELINE_ESTIMATOR_H_
#define LQO_OPTIMIZER_BASELINE_ESTIMATOR_H_

#include <string>

#include "optimizer/cardinality_interface.h"
#include "optimizer/table_stats.h"

namespace lqo {

/// PostgreSQL-style traditional cardinality estimator:
///  - per-column selectivities from histogram + MCV statistics,
///  - attribute-value independence within a table (selectivities multiply),
///  - join selectivity 1 / max(ndv_left, ndv_right) per equi-join conjunct,
///    applied independently (also for cyclic join graphs, as PostgreSQL
///    does).
/// This is the "native optimizer" estimator every learned method is
/// compared against.
class BaselineCardinalityEstimator : public CardinalityEstimatorInterface {
 public:
  BaselineCardinalityEstimator(const Catalog* catalog,
                               const StatsCatalog* stats)
      : catalog_(catalog), stats_(stats) {}

  double EstimateSubquery(const Subquery& subquery) override;
  std::string Name() const override { return "postgres_baseline"; }

  /// Selectivity of all local predicates of `table_index` in `query`
  /// (product under independence). Exposed for reuse by learned methods
  /// that mix in traditional per-table estimates (e.g. GLUE).
  double TableSelectivity(const Query& query, int table_index) const;

 private:
  const Catalog* catalog_;
  const StatsCatalog* stats_;
};

}  // namespace lqo

#endif  // LQO_OPTIMIZER_BASELINE_ESTIMATOR_H_
