#ifndef LQO_OPTIMIZER_REOPTIMIZER_H_
#define LQO_OPTIMIZER_REOPTIMIZER_H_

#include "engine/executor.h"
#include "optimizer/optimizer.h"

namespace lqo {

/// Options for progressive re-optimization.
struct ReoptimizerOptions {
  /// Re-plan when an intermediate's estimate is off by more than this
  /// q-error factor.
  double qerror_threshold = 4.0;
  /// Upper bound on re-planning rounds per query.
  int max_replans = 4;
};

/// Outcome of a progressively re-optimized execution.
struct ReoptimizationResult {
  uint64_t row_count = 0;
  /// Total charged time: the final execution plus the pilot executions of
  /// subtrees the final plan *abandoned* (subtrees it keeps are reused as
  /// materialized intermediates, as pipelining engines do).
  double time_units = 0.0;
  int replans = 0;
  /// Intermediate cardinalities observed and injected.
  int observations = 0;
};

/// LPCE-style progressive re-optimization [59] (also the mechanism behind
/// mid-query re-optimization in adaptive engines): execute the plan's
/// smallest unobserved join first, compare the actual intermediate
/// cardinality against the optimizer's estimate, inject the truth, and
/// re-plan the remainder whenever the estimate was badly wrong. The
/// initial model's errors are thereby corrected *during* execution instead
/// of being paid for in full.
class ProgressiveReoptimizer {
 public:
  ProgressiveReoptimizer(const Optimizer* optimizer, const Executor* executor,
                         ReoptimizerOptions options = ReoptimizerOptions());

  /// Plans and executes `query`, refining `cards` (whose overrides
  /// accumulate the observed intermediates) along the way.
  ReoptimizationResult Execute(const Query& query,
                               CardinalityProvider* cards) const;

 private:
  const Optimizer* optimizer_;
  const Executor* executor_;
  ReoptimizerOptions options_;
};

}  // namespace lqo

#endif  // LQO_OPTIMIZER_REOPTIMIZER_H_
