#include "optimizer/reoptimizer.h"

#include <map>
#include <set>

#include "common/logging.h"
#include "ml/metrics.h"

namespace lqo {

ProgressiveReoptimizer::ProgressiveReoptimizer(const Optimizer* optimizer,
                                               const Executor* executor,
                                               ReoptimizerOptions options)
    : optimizer_(optimizer), executor_(executor), options_(options) {
  LQO_CHECK(optimizer_ != nullptr);
  LQO_CHECK(executor_ != nullptr);
}

ReoptimizationResult ProgressiveReoptimizer::Execute(
    const Query& query, CardinalityProvider* cards) const {
  LQO_CHECK(cards != nullptr);
  ReoptimizationResult result;
  std::set<std::string> observed;
  // Pilot cost per executed subtree signature; subtrees kept by the final
  // plan are not charged again (the engine reuses their materialized
  // output), only abandoned ones count as re-optimization overhead.
  std::map<std::string, double> pilot_cost;

  PlannerResult current = optimizer_->Optimize(query, cards);
  while (true) {
    // Smallest unobserved join subtree of the current plan (bottom-up
    // visit yields children first; pick the first with <= smallest size).
    const PlanNode* target = nullptr;
    VisitPlanBottomUp(*current.plan.root, [&](const PlanNode& node) {
      if (node.kind != PlanNode::Kind::kJoin) return;
      if (target != nullptr &&
          PopCount(node.table_set) >= PopCount(target->table_set)) {
        return;
      }
      Subquery subquery{&query, node.table_set};
      if (observed.count(subquery.Key()) > 0) return;
      target = &node;
    });
    if (target == nullptr) break;  // every intermediate confirmed.

    Subquery subquery{&query, target->table_set};
    double estimate = cards->Cardinality(subquery);

    // Pilot-execute the subtree to observe the actual cardinality.
    PhysicalPlan pilot;
    pilot.query = &query;
    pilot.root = target->Clone();
    auto pilot_result = executor_->Execute(pilot);
    LQO_CHECK(pilot_result.ok()) << pilot_result.status().ToString();
    pilot_cost[pilot.Signature()] = pilot_result->time_units;
    double actual =
        std::max(1.0, static_cast<double>(pilot_result->row_count));
    observed.insert(subquery.Key());
    cards->InjectOverride(subquery.Key(), actual);
    ++result.observations;

    if (QError(estimate, actual) > options_.qerror_threshold &&
        result.replans < options_.max_replans) {
      // The plan was built on a badly wrong estimate: re-plan with the
      // injected truth (and everything observed so far).
      current = optimizer_->Optimize(query, cards);
      ++result.replans;
    }
  }

  auto final_result = executor_->Execute(current.plan);
  LQO_CHECK(final_result.ok()) << final_result.status().ToString();
  result.time_units += final_result->time_units;
  result.row_count = final_result->row_count;

  // Charge the pilots whose work the final plan does not reuse.
  std::set<std::string> kept;
  VisitPlanBottomUp(*current.plan.root, [&](const PlanNode& node) {
    if (node.kind == PlanNode::Kind::kJoin) {
      kept.insert(node.Signature(query));
    }
  });
  for (const auto& [signature, cost] : pilot_cost) {
    if (kept.count(signature) == 0) result.time_units += cost;
  }
  return result;
}

}  // namespace lqo
