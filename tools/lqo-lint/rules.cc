// The rule catalog: one table entry per rule — id, family, severity, the
// one-line summary printed with findings, the waiver spelling, and the
// --explain paragraph. Adding a rule means adding an entry here and a
// Check* function in lint.cc.
#include "lqo-lint/lint.h"

namespace lqo::lint {
namespace {

const std::vector<Rule>& Catalog() {
  static const std::vector<Rule>* rules = new std::vector<Rule>{
      {"rand", "determinism", Severity::kError,
       "libc rand()/srand()/rand_r() is banned",
       "// lint: rand-ok(<reason>)",
       "The repo's core contract is bit-for-bit reproducibility across\n"
       "LQO_THREADS and across runs. libc rand() draws from hidden global\n"
       "state that is shared across threads and seeded out-of-band, so any\n"
       "call site silently couples results to scheduling and link order.\n"
       "Use lqo::Rng (src/common/rng.h), seeded explicitly at construction."},
      {"random-device", "determinism", Severity::kError,
       "std::random_device is banned (nondeterministic entropy)",
       "// lint: random-device-ok(<reason>)",
       "std::random_device reads hardware/OS entropy: two runs of the same\n"
       "binary produce different streams, which breaks the thread-invariance\n"
       "tests and makes benchmark numbers unreproducible. Seed lqo::Rng with\n"
       "an explicit constant (or a value plumbed through configuration)."},
      {"wall-clock", "determinism", Severity::kError,
       "wall-clock reads (time(), system_clock, localtime, ...) are banned",
       "// lint: wall-clock-ok(<reason>)",
       "time(), gettimeofday(), localtime()/gmtime() and\n"
       "std::chrono::system_clock observe the wall clock, so results depend\n"
       "on when the process runs. Seeding or branching on them is exactly\n"
       "the non-reproducibility Lehmann et al. catalog in learned-optimizer\n"
       "evaluations. steady_clock is fine for duration measurement; for\n"
       "seeds use explicit constants."},
      {"exec-policy", "determinism", Severity::kError,
       "std::execution parallel policies are banned outside the allowlist",
       "// lint: exec-policy-ok(<reason>)",
       "std::execution::par / par_unseq hand scheduling to the standard\n"
       "library, outside the deterministic ThreadPool substrate: reductions\n"
       "reassociate, worker counts ignore LQO_THREADS, and TSan sees a\n"
       "foreign thread pool. All parallelism must go through ParallelFor /\n"
       "ParallelMap (src/common/thread_pool.h), which are index-addressed\n"
       "and bit-for-bit identical at any thread count."},
      {"unordered-iter", "determinism", Severity::kError,
       "range-for over std::unordered_{map,set} without a waiver",
       "// lint: unordered-iter-ok(<reason>)",
       "Hash-container iteration order is unspecified: it varies across\n"
       "standard libraries, hash seeds, and insertion histories, so any\n"
       "result that folds over it (float accumulation, first-wins picks,\n"
       "output ordering) silently depends on bucket layout. This is the\n"
       "static twin of the dynamic thread-invariance tests. Either iterate\n"
       "in sorted key order, or — when the fold is provably order-free\n"
       "(e.g. exact integer counting) — waive the site with\n"
       "// lint: unordered-iter-ok(<reason>) on the for-line or the line\n"
       "above. The per-file pass sees declarations in the same file and in\n"
       "the paired header of a .cc; the whole-program pass additionally\n"
       "tracks members and `using X = std::unordered_*` aliases declared in\n"
       "any other translation unit, so iterating a member through a header\n"
       "alias from a distant .cc is reported too."},
      {"raw-thread", "concurrency", Severity::kError,
       "raw std::thread/std::async/detach()/thread_local outside the pool",
       "// lint: raw-thread-ok(<reason>)",
       "Every parallel site must run on the deterministic ThreadPool\n"
       "(src/common/thread_pool.*): raw std::thread, std::jthread,\n"
       "std::async, detach()ed threads and mutable thread_local state\n"
       "bypass LQO_THREADS, the nesting protocol, and the index-addressed\n"
       "result discipline that makes N-thread runs bit-identical to serial\n"
       "runs. std::thread::id / std::this_thread are fine (no spawning)."},
      {"parallel-reduction", "determinism", Severity::kError,
       "float/double += through a by-reference capture inside a ParallelFor/"
       "ParallelMap body",
       "// lint: parallel-reduction-ok(<reason>)",
       "Accumulating a captured double/float with += from inside a\n"
       "ParallelFor/ParallelMap body is a cross-task reduction: it is both a\n"
       "data race and — even if locked — a reassociation of floating-point\n"
       "additions whose result depends on scheduling, breaking the\n"
       "bit-for-bit thread-invariance contract. Reduce into index-addressed\n"
       "slots (out[i] = ...) and fold serially after the parallel region\n"
       "(cf. RandomForest::PredictBatchWithUncertainty), or — when the\n"
       "accumulation order is deterministic by construction — state it with\n"
       "a // ordered-reduction: comment on the site, or waive with\n"
       "// lint: parallel-reduction-ok(<reason>). The pass sees\n"
       "declarations in the same file and in the paired header of a .cc;\n"
       "locals declared inside the lambda body are exempt."},
      {"mutex-guards", "concurrency", Severity::kError,
       "std::mutex/std::shared_mutex member lacks a // guards: comment",
       "// lint: mutex-guards-ok(<reason>)",
       "Every mutex declaration must carry a // guards: comment (same line\n"
       "or the line above) naming the fields it protects, e.g.\n"
       "  std::mutex mutex_;  // guards: queue_, stop_\n"
       "This keeps the locking protocol reviewable and gives the Clang\n"
       "Thread Safety annotations (src/common/thread_annotations.h) a\n"
       "human-readable mirror. cf. CardinalityProvider::mutex_ in\n"
       "src/optimizer/cardinality_interface.h."},
      {"atomic-comment", "concurrency", Severity::kError,
       "std::atomic declaration lacks a comment stating its protocol",
       "// lint: atomic-comment-ok(<reason>)",
       "Atomics are lock-free shared state: without a stated protocol\n"
       "(what the counter means, why relaxed ordering is sound, who\n"
       "publishes / who observes) the next reader cannot tell a benign\n"
       "statistics counter from a synchronization flag. Put a comment on\n"
       "the declaration line or in the comment block directly above it,\n"
       "e.g.\n"
       "  std::atomic<uint64_t> hits_{0};  // relaxed: monotonic stat\n"
       "cf. InferenceCounters (src/ml/inference_stats.h)."},
      {"header-mutable-state", "concurrency", Severity::kError,
       "mutable namespace-scope state declared in a header",
       "// lint: header-mutable-state-ok(<reason>)",
       "A non-const static/inline variable at namespace scope in a header\n"
       "is shared mutable state with no owner and no lock: every includer\n"
       "can race on it, and its value makes results depend on call history.\n"
       "Move it behind a function in a .cc (cf. ThreadPool::Global()) or\n"
       "make it constexpr."},
      {"header-guard", "hygiene", Severity::kError,
       "header missing #ifndef/#define guard or #pragma once",
       "// lint: header-guard-ok(<reason>) (on line 1)",
       "Headers must open with an include guard (#ifndef X / #define X,\n"
       "matching macro) or #pragma once before any code. The repo\n"
       "convention is LQO_<PATH>_H_ guards."},
      {"hot-loop-growth", "hygiene", Severity::kError,
       "per-row push_back/emplace_back inside a nested loop of a hot-path "
       "file",
       "// lint: hot-loop-growth-ok(<reason>)",
       "Growing a container one element per row from inside a nested loop\n"
       "of a hot-path file (engine/, *kernel*) defeats the batched\n"
       "execution substrate: every call re-checks capacity, may reallocate\n"
       "mid-scan, and serializes the inner loop on the container's size\n"
       "bookkeeping. Batch kernels size the output once per batch and write\n"
       "through a raw pointer instead — gather survivors with GatherAppend /\n"
       "AppendContiguous (src/engine/vec_batch.h) or bulk insert() after the\n"
       "loop. Deliberate per-row growth (e.g. a scalar reference path kept\n"
       "for A/B equality) is waived with\n"
       "// lint: hot-loop-growth-ok(<reason>)."},
      {"raw-intrinsics", "hygiene", Severity::kError,
       "raw SIMD intrinsics (immintrin.h/arm_neon.h, _mm*/v*q_) outside "
       "engine/simd.* and engine/agg_kernels.*",
       "// lint: raw-intrinsics-ok(<reason>)",
       "All explicit SIMD lives behind the dispatch layer in\n"
       "src/engine/simd.h: per-ISA kernels registered in a KernelTable,\n"
       "resolved once at runtime from CPU detection or LQO_SIMD, with the\n"
       "scalar level as the bit-identical definitional reference. The\n"
       "aggregation kernels in src/engine/agg_kernels.* follow the same\n"
       "per-level table/ActiveLevel() discipline and are part of the\n"
       "dispatch layer. Intrinsic headers (<immintrin.h>, <arm_neon.h>,\n"
       "...) or intrinsic calls (_mm_/_mm256_/_mm512_/vld1q_...) anywhere\n"
       "else bypass that contract: the code compiles only on one ISA,\n"
       "dodges the per-level bit-equality tests, and cannot be A/B'd or\n"
       "disabled via LQO_SIMD. Add a kernel to one of the dispatch tables\n"
       "instead, or waive a deliberate exception with\n"
       "// lint: raw-intrinsics-ok(<reason>)."},
      {"using-namespace-header", "hygiene", Severity::kError,
       "using namespace at header scope",
       "// lint: using-namespace-header-ok(<reason>)",
       "`using namespace` in a header leaks the namespace into every\n"
       "translation unit that includes it, producing spooky overload\n"
       "changes at a distance. Qualify names instead."},
      {"lock-discipline", "concurrency", Severity::kError,
       "guarded member used without the named mutex lexically held",
       "// locked-by: <mutex>(<reason>)  (or // lint: lock-discipline-ok(...))",
       "A // guards: comment (or LQO_GUARDED_BY attribute) is a contract,\n"
       "not documentation: every use of the listed member inside a method\n"
       "body must be lexically preceded, in an enclosing scope, by a lock\n"
       "acquisition on the named mutex — a std::lock_guard / unique_lock /\n"
       "shared_lock / scoped_lock naming it, or a manual .lock(). Methods\n"
       "annotated LQO_REQUIRES(mutex) (on the in-class declaration or the\n"
       "definition) are checked as if the lock were held throughout. This\n"
       "is the guarded-member-touched-without-lock class of race that TSan\n"
       "only catches when a test happens to hit the interleaving. Sites\n"
       "that are safe without the lock (single-threaded construction, a\n"
       "frozen read-only phase) are waived in place with\n"
       "// locked-by: <mutex>(<reason>), which names the protocol that\n"
       "makes the bare access sound."},
      {"layering", "hygiene", Severity::kError,
       "#include edge forbidden by the src/ layering DAG",
       "// lint: layering-ok(<reason>)",
       "src/ layers form a declarative DAG (the LayerDag() table in\n"
       "tools/lqo-lint/rules.cc): common is the base everything may use;\n"
       "storage/query/engine/ml sit in the middle; optimizer and the model\n"
       "layers build on them; serving/e2e/regression/pilotscope are the\n"
       "top. Lower layers must never include upper ones — engine, ml and\n"
       "storage must not include serving, e2e or pilotscope — or builds\n"
       "grow hidden cycles and the serving substrate leaks into kernels.\n"
       "Violations name the offending edge. Extending the DAG is a\n"
       "reviewed edit to the table, not a waiver."},
  };
  return *rules;
}

// The declarative layering DAG over src/. A layer may include itself plus
// the listed layers (transitive closure spelled out, so the check is a flat
// membership test). Directories not listed are unconstrained.
const std::vector<LayerSpec>& Dag() {
  static const std::vector<LayerSpec>* dag = new std::vector<LayerSpec>{
      {"common", {}},
      {"storage", {"common"}},
      {"query", {"common", "storage"}},
      {"engine", {"common", "storage", "query"}},
      {"ml", {"common"}},
      {"optimizer", {"common", "storage", "query", "engine", "ml"}},
      {"costmodel",
       {"common", "storage", "query", "engine", "ml", "optimizer"}},
      {"cardinality",
       {"common", "storage", "query", "engine", "ml", "optimizer"}},
      {"joinorder",
       {"common", "storage", "query", "engine", "ml", "optimizer"}},
      {"e2e",
       {"common", "storage", "query", "engine", "ml", "optimizer",
        "costmodel", "cardinality", "joinorder"}},
      {"regression",
       {"common", "storage", "query", "engine", "ml", "optimizer",
        "costmodel", "cardinality", "joinorder", "e2e"}},
      {"serving",
       {"common", "storage", "query", "engine", "ml", "optimizer",
        "costmodel", "cardinality", "joinorder", "e2e"}},
      {"pilotscope",
       {"common", "storage", "query", "engine", "ml", "optimizer",
        "costmodel", "cardinality", "joinorder", "e2e", "serving"}},
      {"benchlib",
       {"common", "storage", "query", "engine", "ml", "optimizer",
        "costmodel", "cardinality", "joinorder", "e2e", "regression",
        "serving", "pilotscope"}},
  };
  return *dag;
}

}  // namespace

const std::vector<Rule>& Rules() { return Catalog(); }

const Rule* FindRule(std::string_view id) {
  for (const Rule& r : Catalog()) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const std::vector<LayerSpec>& LayerDag() { return Dag(); }

const LayerSpec* FindLayer(std::string_view name) {
  for (const LayerSpec& layer : Dag()) {
    if (layer.name == name) return &layer;
  }
  return nullptr;
}

}  // namespace lqo::lint
