// lqo-lint CLI: scans the repo's C++ sources for determinism, concurrency
// and hygiene hazards (see lint.h for the rule catalog) and exits nonzero on
// any unwaived finding. Registered as a ctest test and run first by
// scripts/check.sh, so hazards fail CI before any dynamic test executes.
//
// Usage:
//   lqo-lint [--root <dir>] [dirs...]    lint dirs
//                                        (default: src tests bench examples)
//   lqo-lint --explain <rule-id>         print a rule's rationale and waiver
//   lqo-lint --list-rules                print the rule catalog
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lqo-lint/lint.h"

namespace {

const char* SeverityName(lqo::lint::Severity s) {
  return s == lqo::lint::Severity::kError ? "error" : "warning";
}

int Explain(const std::string& id) {
  const lqo::lint::Rule* rule = lqo::lint::FindRule(id);
  if (rule == nullptr) {
    std::cerr << "lqo-lint: unknown rule '" << id << "' (try --list-rules)\n";
    return 2;
  }
  std::cout << rule->id << " [" << rule->family << ", "
            << SeverityName(rule->severity) << "]\n"
            << "  " << rule->summary << "\n"
            << "  waiver: " << rule->waiver << "\n\n"
            << rule->explain << "\n";
  return 0;
}

int ListRules() {
  for (const lqo::lint::Rule& rule : lqo::lint::Rules()) {
    std::cout << rule.id << "\t" << rule.family << "\t"
              << SeverityName(rule.severity) << "\t" << rule.summary << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0 && i + 1 < argc) {
      return Explain(argv[++i]);
    }
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      return ListRules();
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (argv[i][0] == '-') {
      std::cerr << "lqo-lint: unknown flag " << argv[i] << "\n";
      return 2;
    }
    dirs.push_back(argv[i]);
  }
  if (dirs.empty()) dirs = {"src", "tests", "bench", "examples"};

  std::vector<lqo::lint::Finding> findings = lqo::lint::LintTree(root, dirs);

  int errors = 0;
  int waived = 0;
  for (const lqo::lint::Finding& f : findings) {
    if (f.waived) {
      ++waived;
      continue;
    }
    ++errors;
    const lqo::lint::Rule* rule = lqo::lint::FindRule(f.rule_id);
    std::cout << f.file << ":" << f.line << ": "
              << SeverityName(rule ? rule->severity
                                   : lqo::lint::Severity::kError)
              << ": [" << f.rule_id << "] " << f.message << "\n";
  }

  // Per-rule summary (check.sh surfaces this after the diagnostics).
  std::cout << "lqo-lint: " << errors << " error(s), " << waived
            << " waived finding(s)\n";
  if (!findings.empty()) {
    std::cout << "  rule                     errors  waived\n";
    for (const auto& [rule_id, tally] : lqo::lint::Tally(findings)) {
      std::printf("  %-24.*s %6d  %6d\n", static_cast<int>(rule_id.size()),
                  rule_id.data(), tally.errors, tally.waived);
    }
  }
  if (errors > 0) {
    std::cout << "lqo-lint: run with --explain <rule-id> for rationale and "
                 "waiver syntax\n";
  }
  return errors > 0 ? 1 : 0;
}
