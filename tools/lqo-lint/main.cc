// lqo-lint CLI: two-phase whole-program analysis of the repo's C++ sources
// for determinism, concurrency and hygiene hazards (see lint.h for the rule
// catalog and the phase split) — exits nonzero on any unwaived finding or
// waiver-budget deviation. Registered as a ctest test and run first by
// scripts/check.sh, so hazards fail CI before any dynamic test executes.
//
// Usage:
//   lqo-lint [--root <dir>] [dirs...]    lint dirs
//                                        (default: src tests bench examples
//                                         tools)
//   lqo-lint --only <path> [...]         report findings only for the listed
//                                        files (repeatable; the full project
//                                        index is still built from dirs, so
//                                        cross-TU rules stay whole-program).
//                                        Baseline comparison is skipped.
//   lqo-lint --format text|json|sarif    findings emission (default text)
//   lqo-lint --sarif-out <file>          additionally write a SARIF log
//   lqo-lint --baseline <file>           enforce the waiver budget: fail if
//                                        waived counts grow past the file OR
//                                        shrink below it (stale baseline)
//   lqo-lint --write-baseline <file>     regenerate the waiver budget
//   lqo-lint --explain <rule-id>         print a rule's rationale and waiver
//   lqo-lint --list-rules                print the rule catalog
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lqo-lint/lint.h"

namespace {

const char* SeverityName(lqo::lint::Severity s) {
  return s == lqo::lint::Severity::kError ? "error" : "warning";
}

int Explain(const std::string& id) {
  const lqo::lint::Rule* rule = lqo::lint::FindRule(id);
  if (rule == nullptr) {
    std::cerr << "lqo-lint: unknown rule '" << id << "' (try --list-rules)\n";
    return 2;
  }
  std::cout << rule->id << " [" << rule->family << ", "
            << SeverityName(rule->severity) << "]\n"
            << "  " << rule->summary << "\n"
            << "  waiver: " << rule->waiver << "\n\n"
            << rule->explain << "\n";
  return 0;
}

int ListRules() {
  for (const lqo::lint::Rule& rule : lqo::lint::Rules()) {
    std::cout << rule.id << "\t" << rule.family << "\t"
              << SeverityName(rule.severity) << "\t" << rule.summary << "\n";
  }
  return 0;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return static_cast<bool>(out);
}

// Normalizes an --only argument to the root-relative form LintTree emits
// ("./src/x.cc" and "src/x.cc" both match "src/x.cc").
std::string NormalizePath(std::string path) {
  while (path.rfind("./", 0) == 0) path = path.substr(2);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string sarif_out;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> dirs;
  std::set<std::string> only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0 && i + 1 < argc) {
      return Explain(argv[++i]);
    }
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      return ListRules();
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "lqo-lint: --format must be text, json or sarif\n";
        return 2;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--format=", 9) == 0) {
      format = argv[i] + 9;
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "lqo-lint: --format must be text, json or sarif\n";
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--sarif-out") == 0 && i + 1 < argc) {
      sarif_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--write-baseline") == 0 && i + 1 < argc) {
      write_baseline_path = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only.insert(NormalizePath(argv[++i]));
      continue;
    }
    if (argv[i][0] == '-') {
      std::cerr << "lqo-lint: unknown flag " << argv[i] << "\n";
      return 2;
    }
    dirs.push_back(argv[i]);
  }
  if (dirs.empty()) dirs = {"src", "tests", "bench", "examples", "tools"};

  // Whole-program analysis over the full tree; --only filters the report
  // only, so cross-TU rules always see the complete index.
  std::vector<lqo::lint::Finding> all = lqo::lint::LintTree(root, dirs);
  std::vector<lqo::lint::Finding> findings;
  if (only.empty()) {
    findings = std::move(all);
  } else {
    for (lqo::lint::Finding& f : all) {
      if (only.count(NormalizePath(f.file)) > 0) {
        findings.push_back(std::move(f));
      }
    }
  }

  if (!write_baseline_path.empty()) {
    if (!only.empty()) {
      std::cerr << "lqo-lint: --write-baseline cannot be combined with "
                   "--only (the budget covers the whole tree)\n";
      return 2;
    }
    if (!WriteFile(write_baseline_path,
                   lqo::lint::RenderBaseline(findings))) {
      std::cerr << "lqo-lint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    std::cout << "lqo-lint: wrote waiver budget to " << write_baseline_path
              << "\n";
  }

  if (!sarif_out.empty() &&
      !WriteFile(sarif_out, lqo::lint::RenderSarif(findings))) {
    std::cerr << "lqo-lint: cannot write " << sarif_out << "\n";
    return 2;
  }

  int errors = 0;
  int waived = 0;
  for (const lqo::lint::Finding& f : findings) (f.waived ? waived : errors)++;

  if (format == "json") {
    std::cout << lqo::lint::RenderJson(findings);
  } else if (format == "sarif") {
    std::cout << lqo::lint::RenderSarif(findings);
  } else {
    for (const lqo::lint::Finding& f : findings) {
      if (f.waived) continue;
      const lqo::lint::Rule* rule = lqo::lint::FindRule(f.rule_id);
      std::cout << f.file << ":" << f.line << ": "
                << SeverityName(rule ? rule->severity
                                     : lqo::lint::Severity::kError)
                << ": [" << f.rule_id << "] " << f.message << "\n";
    }
    // Per-rule summary (check.sh surfaces this after the diagnostics).
    std::cout << "lqo-lint: " << errors << " error(s), " << waived
              << " waived finding(s)\n";
    if (!findings.empty()) {
      std::cout << "  rule                     errors  waived\n";
      for (const auto& [rule_id, tally] : lqo::lint::Tally(findings)) {
        std::printf("  %-24.*s %6d  %6d\n", static_cast<int>(rule_id.size()),
                    rule_id.data(), tally.errors, tally.waived);
      }
    }
  }

  // Waiver budget: only meaningful over the full tree.
  bool budget_failed = false;
  if (!baseline_path.empty() && only.empty() && write_baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "lqo-lint: cannot read baseline " << baseline_path
                << " (generate with --write-baseline)\n";
      budget_failed = true;
    } else {
      std::ostringstream buf;
      buf << in.rdbuf();
      for (const std::string& problem :
           lqo::lint::CheckBaseline(findings, buf.str())) {
        std::cerr << "lqo-lint: " << problem << "\n";
        budget_failed = true;
      }
    }
  }

  if (errors > 0 && format == "text") {
    std::cout << "lqo-lint: run with --explain <rule-id> for rationale and "
                 "waiver syntax\n";
  }
  return (errors > 0 || budget_failed) ? 1 : 0;
}
