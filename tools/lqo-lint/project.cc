// Whole-program analysis: the two-phase pass promoted in PR 9.
//
// Phase 1 scrubs and tokenizes every file in parallel on the repo's own
// lqo::ThreadPool (dogfooding the deterministic substrate: ParallelMap
// writes index-addressed slots, results are folded in sorted path order, so
// diagnostics are bit-identical at any LQO_THREADS). Each worker runs the
// per-file rules and extracts index fragments: per-class member tables with
// their // guards: / LQO_GUARDED_BY / LQO_REQUIRES contracts and atomic
// protocol comments, unordered-container members and aliases, and the
// quoted-include list.
//
// Phase 2 folds the fragments into a ProjectIndex and runs the cross-TU
// rule families against it:
//   lock-discipline   a use of a guarded member inside a method body must be
//                     lexically preceded, in an enclosing scope, by a lock
//                     acquisition on the named mutex (lock_guard /
//                     unique_lock / shared_lock / scoped_lock / manual
//                     .lock()), or the method carries LQO_REQUIRES(mutex),
//                     or the site carries a // locked-by: waiver.
//   unordered-iter    range-for over a member whose unordered type was
//                     declared in a different translation unit.
//   layering          the #include graph over src/ must respect the
//                     declarative layer DAG in rules.cc.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/thread_pool.h"
#include "lqo-lint/lint.h"
#include "lqo-lint/textutil.h"

namespace lqo::lint {
namespace {

using text::CommentWaives;
using text::FindTokens;
using text::ForEachRangeFor;
using text::HasToken;
using text::IdentChar;
using text::LineIndex;
using text::MatchBrace;
using text::PrecededByStd;
using text::SkipSpace;

constexpr size_t npos = std::string_view::npos;

// Offset of the matching `close` for the `open` delimiter at `at`.
size_t MatchPair(std::string_view code, size_t at, char open, char close) {
  int depth = 0;
  for (size_t i = at; i < code.size(); ++i) {
    if (code[i] == open) ++depth;
    if (code[i] == close) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return npos;
}

// Skips balanced template angles starting at `<`; returns the offset just
// past the matching `>`, or `at` when they never balance.
size_t SkipAngles(std::string_view code, size_t at) {
  int depth = 0;
  for (size_t i = at; i < code.size() && i < at + 400; ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
    if (code[i] == ';') break;
  }
  return at;
}

std::string_view TokenAt(std::string_view code, size_t pos) {
  size_t e = pos;
  while (e < code.size() && IdentChar(code[e])) ++e;
  return code.substr(pos, e - pos);
}

// Identifier ending right before `pos` (skipping trailing spaces); empty
// when `pos` is not preceded by one.
std::string_view TokenBefore(std::string_view code, size_t pos) {
  size_t e = pos;
  while (e > 0 && (code[e - 1] == ' ' || code[e - 1] == '\t')) --e;
  size_t s = e;
  while (s > 0 && IdentChar(code[s - 1])) --s;
  return code.substr(s, e - s);
}

// ---------------------------------------------------------------------------
// Comment lookup over a ScrubResult
// ---------------------------------------------------------------------------

class CommentLookup {
 public:
  CommentLookup(const ScrubResult& scrub, const LineIndex& lines)
      : scrub_(scrub), lines_(lines) {}

  std::string_view On(int line) const {
    if (line < 1 ||
        static_cast<size_t>(line) >= scrub_.line_comments.size()) {
      return {};
    }
    return scrub_.line_comments[static_cast<size_t>(line)];
  }

  // True when the scrubbed code of `line` holds only whitespace, i.e. the
  // line is comment-only.
  bool LineCodeBlank(int line) const {
    if (line < 1 || static_cast<size_t>(line) > lines_.starts.size()) {
      return false;
    }
    size_t begin = lines_.starts[static_cast<size_t>(line) - 1];
    size_t end = static_cast<size_t>(line) < lines_.starts.size()
                     ? lines_.starts[static_cast<size_t>(line)]
                     : scrub_.code.size();
    for (size_t i = begin; i < end; ++i) {
      if (!std::isspace(static_cast<unsigned char>(scrub_.code[i]))) {
        return false;
      }
    }
    return true;
  }

  // The contiguous comment-only block above `line` plus the same-line
  // comment, concatenated top-to-bottom with spaces (so a // guards: list
  // that wraps across physical lines parses as one).
  std::string Block(int line) const {
    std::vector<std::string_view> above;
    for (int l = line - 1; l >= 1; --l) {
      if (On(l).empty() || !LineCodeBlank(l)) break;
      above.push_back(On(l));
    }
    std::string out;
    for (auto it = above.rbegin(); it != above.rend(); ++it) {
      out.append(*it);
      out.push_back(' ');
    }
    out.append(On(line));
    return out;
  }

  // Standard waiver: `// lint: <id>-ok(<reason>)` on the line or line above.
  bool Waives(int line, std::string_view id) const {
    return CommentWaives(On(line), id) || CommentWaives(On(line - 1), id);
  }

 private:
  const ScrubResult& scrub_;
  const LineIndex& lines_;
};

// True when `comment` contains `locked-by: <mutex>(<nonempty reason>)` for
// the given mutex.
bool LockedByWaives(std::string_view comment, std::string_view mutex) {
  size_t pos = 0;
  while ((pos = comment.find("locked-by:", pos)) != npos) {
    size_t i = SkipSpace(comment, pos + 10);
    if (comment.compare(i, mutex.size(), mutex) == 0) {
      size_t after = i + mutex.size();
      if (after < comment.size() && comment[after] == '(') {
        size_t close = comment.find(')', after);
        if (close != npos &&
            comment.substr(after + 1, close - after - 1)
                    .find_first_not_of(" \t") != std::string_view::npos) {
          return true;
        }
      }
    }
    pos += 10;
  }
  return false;
}

// Identifiers after "guards:" separated by commas; the list ends at the
// first token that is not an identifier (prose, an em-dash, a paren).
std::vector<std::string> ParseGuardsList(std::string_view comment) {
  std::vector<std::string> out;
  size_t g = comment.find("guards:");
  if (g == npos) return out;
  size_t i = g + 7;
  while (true) {
    i = SkipSpace(comment, i);
    size_t e = i;
    while (e < comment.size() && IdentChar(comment[e])) ++e;
    if (e == i) break;
    out.emplace_back(comment.substr(i, e - i));
    i = SkipSpace(comment, e);
    if (i < comment.size() && comment[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Phase 1: per-file analysis
// ---------------------------------------------------------------------------

struct MethodRegion {
  std::string class_name;
  std::string method;  // bare name; "" when unknown
  size_t begin = 0;    // offset of the body '{'
  size_t end = 0;      // offset of the matching '}'
  // Mutexes named by LQO_REQUIRES/LQO_REQUIRES_SHARED on this definition.
  std::vector<std::string> held;
};

struct FileAnalysis {
  ScrubResult scrub;
  std::vector<Finding> findings;  // per-file rules
  std::vector<ClassInfo> classes;
  std::vector<MethodRegion> inline_methods;  // bodies inside class bodies
  std::vector<IncludeEdge> includes;
  std::vector<std::string> aliases;  // file-level unordered aliases
};

// Mutex names inside LQO_REQUIRES / LQO_REQUIRES_SHARED in `text`.
std::vector<std::string> ParseRequires(std::string_view text) {
  std::vector<std::string> out;
  for (std::string_view macro : {"LQO_REQUIRES", "LQO_REQUIRES_SHARED"}) {
    for (size_t pos : FindTokens(text, macro)) {
      size_t p = SkipSpace(text, pos + macro.size());
      if (p >= text.size() || text[p] != '(') continue;
      size_t close = MatchPair(text, p, '(', ')');
      if (close == npos) continue;
      std::string_view args = text.substr(p + 1, close - p - 1);
      size_t i = 0;
      while (i < args.size()) {
        if (IdentChar(args[i]) && (i == 0 || !IdentChar(args[i - 1]))) {
          std::string_view tok = TokenAt(args, i);
          out.emplace_back(tok);
          i += tok.size();
        } else {
          ++i;
        }
      }
    }
  }
  return out;
}

// Method name = the identifier right before the first paren-depth-0 `(` of
// a member-declaration head (handles `void F(`, `Shard& ShardOf(`,
// `size_t operator()(`).
std::string MethodNameFromHead(std::string_view head) {
  size_t paren = head.find('(');
  if (paren == npos) return "";
  std::string_view name = TokenBefore(head, paren);
  return std::string(name);
}

// Parses one member-level statement of a class body: mutex members with
// their // guards: lists, LQO_GUARDED_BY members, LQO_REQUIRES method
// declarations, and documented atomics.
void ParseMemberStatement(std::string_view code, size_t stmt_begin,
                          size_t stmt_end, const CommentLookup& comments,
                          const LineIndex& lines, ClassInfo* cls) {
  std::string_view stmt = code.substr(stmt_begin, stmt_end - stmt_begin);

  // Mutex member declaration -> // guards: contract.
  for (std::string_view tok : {"mutex", "shared_mutex"}) {
    for (size_t pos : FindTokens(stmt, tok)) {
      if (!PrecededByStd(stmt, pos)) continue;
      // Skip template arguments (lock_guard<std::mutex>, ...).
      size_t before = pos;
      while (before > 0 &&
             (stmt[before - 1] == ' ' || stmt[before - 1] == ':')) {
        --before;
      }
      if (before >= 4 && stmt.compare(before - 3, 3, "std") == 0) before -= 3;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(stmt[before - 1]))) {
        --before;
      }
      if (before > 0 && (stmt[before - 1] == '<' || stmt[before - 1] == ',')) {
        continue;
      }
      size_t i = SkipSpace(stmt, pos + tok.size());
      std::string_view name = TokenAt(stmt, i);
      if (name.empty()) continue;  // reference/return type, not a member
      int line = lines.LineAt(stmt_begin + pos);
      for (const std::string& member : ParseGuardsList(comments.Block(line))) {
        cls->guarded.push_back({member, std::string(name)});
      }
    }
  }

  // `Type member LQO_GUARDED_BY(mutex)` attributes.
  for (size_t pos : FindTokens(stmt, "LQO_GUARDED_BY")) {
    std::string_view member = TokenBefore(stmt, pos);
    size_t p = SkipSpace(stmt, pos + 14);
    if (member.empty() || p >= stmt.size() || stmt[p] != '(') continue;
    size_t close = MatchPair(stmt, p, '(', ')');
    if (close == npos) continue;
    size_t m = SkipSpace(stmt, p + 1);
    std::string_view mutex = TokenAt(stmt, m);
    if (!mutex.empty()) {
      cls->guarded.push_back({std::string(member), std::string(mutex)});
    }
  }

  // `ReturnType Method(...) LQO_REQUIRES(mutex);` declarations.
  if (stmt.find("LQO_REQUIRES") != std::string_view::npos) {
    std::string method = MethodNameFromHead(stmt);
    if (!method.empty()) {
      for (const std::string& mutex : ParseRequires(stmt)) {
        cls->requires_lock.push_back({method, mutex});
      }
    }
  }

  // Documented std::atomic members -> protocol table.
  for (size_t pos : FindTokens(stmt, "atomic")) {
    if (!PrecededByStd(stmt, pos)) continue;
    size_t i = SkipSpace(stmt, pos + 6);
    if (i >= stmt.size() || stmt[i] != '<') continue;
    size_t after_angles = SkipAngles(stmt, i);
    if (after_angles == i) continue;
    size_t n = SkipSpace(stmt, after_angles);
    std::string_view name = TokenAt(stmt, n);
    if (name.empty()) continue;
    int line = lines.LineAt(stmt_begin + pos);
    std::string protocol = comments.Block(line);
    if (!protocol.empty()) {
      cls->atomic_protocols.emplace(std::string(name), std::move(protocol));
    }
  }
}

// Finds every `class X {` / `struct X {` definition in scrubbed code and
// parses its member-level statements and inline method bodies.
void CollectClasses(const std::string& path, const ScrubResult& scrub,
                    const LineIndex& lines, const CommentLookup& comments,
                    FileAnalysis* out) {
  std::string_view code = scrub.code;
  for (std::string_view kw : {"class", "struct"}) {
    for (size_t pos : FindTokens(code, kw)) {
      if (TokenBefore(code, pos) == "enum") continue;  // enum class
      size_t i = SkipSpace(code, pos + kw.size());
      std::string_view name = TokenAt(code, i);
      if (name.empty()) continue;
      size_t j = SkipSpace(code, i + name.size());
      if (TokenAt(code, j) == "final") j = SkipSpace(code, j + 5);
      size_t body_open = npos;
      if (j < code.size() && code[j] == '{') {
        body_open = j;
      } else if (j < code.size() && code[j] == ':' &&
                 (j + 1 >= code.size() || code[j + 1] != ':')) {
        // Base clause: scan to the first top-level '{'.
        for (size_t k = j + 1; k < code.size() && k < j + 400; ++k) {
          if (code[k] == '<') k = SkipAngles(code, k) - 1;
          if (code[k] == ';') break;
          if (code[k] == '{') {
            body_open = k;
            break;
          }
        }
      }
      if (body_open == npos) continue;  // fwd decl / template param / var
      size_t body_close = MatchBrace(code, body_open);
      if (body_close == npos) continue;

      ClassInfo cls;
      cls.name = std::string(name);
      cls.file = path;
      cls.line = lines.LineAt(pos);

      // Walk member-level statements; nested blocks are skipped wholesale
      // (methods are recorded as regions, nested types are re-found by the
      // outer token scan, brace initializers stay part of their statement).
      size_t stmt_start = body_open + 1;
      int paren = 0;
      for (size_t k = body_open + 1; k < body_close; ++k) {
        char c = code[k];
        if (c == '(') {
          ++paren;
        } else if (c == ')') {
          if (paren > 0) --paren;
        } else if (c == '{') {
          std::string_view head =
              code.substr(stmt_start, k - stmt_start);
          size_t close = MatchBrace(code, k);
          if (close == npos || close > body_close) break;
          bool is_type = HasToken(head, "class") || HasToken(head, "struct") ||
                         HasToken(head, "enum") || HasToken(head, "union");
          // '=' at paren depth 0 in the head means a default member
          // initializer, unless this is operator=.
          bool has_init_eq = false;
          int hd = 0;
          for (char hc : head) {
            if (hc == '(') ++hd;
            if (hc == ')') --hd;
            if (hc == '=' && hd == 0) has_init_eq = true;
          }
          bool is_method =
              !is_type && head.find('(') != std::string_view::npos &&
              (!has_init_eq || HasToken(head, "operator"));
          if (is_method) {
            MethodRegion region;
            region.class_name = cls.name;
            region.method = MethodNameFromHead(head);
            region.begin = k;
            region.end = close;
            region.held = ParseRequires(head);
            if (!region.held.empty() && !region.method.empty()) {
              for (const std::string& mutex : region.held) {
                cls.requires_lock.push_back({region.method, mutex});
              }
            }
            out->inline_methods.push_back(std::move(region));
          }
          if (is_type || is_method) {
            stmt_start = close + 1;
          }
          k = close;
        } else if (c == ';' && paren == 0) {
          ParseMemberStatement(code, stmt_start, k, comments, lines, &cls);
          cls.member_code.append(code.substr(stmt_start, k - stmt_start));
          cls.member_code.append(";\n");
          stmt_start = k + 1;
        } else if (c == ':' && paren == 0 &&
                   (k + 1 >= code.size() || code[k + 1] != ':') &&
                   (k == 0 || code[k - 1] != ':')) {
          // Access specifiers end statements with ':' rather than ';'.
          std::string_view head = code.substr(stmt_start, k - stmt_start);
          size_t b = head.find_first_not_of(" \t\n");
          if (b != std::string_view::npos) {
            std::string_view tok = TokenAt(head, b);
            if (tok == "public" || tok == "private" || tok == "protected") {
              stmt_start = k + 1;
            }
          }
        }
      }
      out->classes.push_back(std::move(cls));
    }
  }
}

// Quoted #include directives, from the raw content (the scrubber blanks
// string literals, so the target must come from the source text).
std::vector<IncludeEdge> CollectIncludes(std::string_view raw) {
  std::vector<IncludeEdge> out;
  int line = 1;
  size_t i = 0;
  while (i < raw.size()) {
    size_t eol = raw.find('\n', i);
    if (eol == npos) eol = raw.size();
    std::string_view l = raw.substr(i, eol - i);
    size_t b = l.find_first_not_of(" \t");
    if (b != std::string_view::npos && l[b] == '#') {
      size_t inc = SkipSpace(l, b + 1);
      if (l.compare(inc, 7, "include") == 0) {
        size_t q1 = l.find('"', inc + 7);
        if (q1 != std::string_view::npos) {
          size_t q2 = l.find('"', q1 + 1);
          if (q2 != std::string_view::npos) {
            out.push_back({std::string(l.substr(q1 + 1, q2 - q1 - 1)), line});
          }
        }
      }
    }
    i = eol + 1;
    ++line;
  }
  return out;
}

FileAnalysis AnalyzeOne(const FileInput& input) {
  FileAnalysis out;
  out.scrub = Scrub(input.content);
  out.findings = LintFileScrubbed(input, out.scrub);
  LineIndex lines(out.scrub.code);
  CommentLookup comments(out.scrub, lines);
  CollectClasses(input.path, out.scrub, lines, comments, &out);
  out.includes = CollectIncludes(input.content);
  std::vector<std::string> names_unused;
  CollectUnorderedNames(out.scrub.code, names_unused, out.aliases);
  return out;
}

// ---------------------------------------------------------------------------
// Phase 2: cross-TU rules
// ---------------------------------------------------------------------------

// Skip uses through another object (`obj.member` / `ptr->member`);
// `this->member` is a self-use.
bool IsForeignAccess(std::string_view code, size_t pos) {
  size_t j = pos;
  while (j > 0 && (code[j - 1] == ' ' || code[j - 1] == '\t')) --j;
  if (j > 0 && code[j - 1] == '.') {
    return TokenBefore(code, j - 1) != "this";
  }
  if (j > 1 && code[j - 2] == '-' && code[j - 1] == '>') {
    return TokenBefore(code, j - 2) != "this";
  }
  return false;
}

// Finds out-of-line `Class::Method(...) ... { body }` definitions for
// indexed classes.
std::vector<MethodRegion> FindOutOfLineMethods(std::string_view code,
                                               const ProjectIndex& index) {
  std::vector<MethodRegion> out;
  size_t pos = 0;
  while ((pos = code.find("::", pos)) != npos) {
    size_t at = pos;
    pos += 2;
    std::string_view cls = TokenBefore(code, at);
    if (cls.empty()) continue;
    auto it = index.classes.find(std::string(cls));
    if (it == index.classes.end()) continue;
    size_t r = SkipSpace(code, at + 2);
    if (r < code.size() && code[r] == '~') r = SkipSpace(code, r + 1);
    std::string_view method = TokenAt(code, r);
    if (method.empty()) continue;
    size_t p = SkipSpace(code, r + method.size());
    if (p >= code.size() || code[p] != '(') continue;
    size_t close = MatchPair(code, p, '(', ')');
    if (close == npos) continue;

    // Trailer between the parameter list and the body: qualifiers,
    // annotations, a constructor init list, or a trailing return type.
    size_t i = SkipSpace(code, close + 1);
    size_t body = npos;
    size_t limit = std::min(code.size(), i + 500);
    while (i < limit) {
      char c = code[i];
      if (c == '{') {
        body = i;
        break;
      }
      if (c == ';' || c == '=') break;  // declaration / = delete
      if (c == ':' && (i + 1 >= code.size() || code[i + 1] != ':')) {
        // Constructor init list: `name(args)` / `name{args}` items.
        size_t j = i + 1;
        bool ok = true;
        while (ok) {
          j = SkipSpace(code, j);
          size_t s = j;
          while (j < code.size() && (IdentChar(code[j]) || code[j] == ':')) {
            ++j;
          }
          if (j < code.size() && code[j] == '<') j = SkipAngles(code, j);
          j = SkipSpace(code, j);
          if (j == s && !(j < code.size() &&
                          (code[j] == '(' || code[j] == '{'))) {
            ok = false;
            break;
          }
          size_t m;
          if (j < code.size() && code[j] == '(') {
            m = MatchPair(code, j, '(', ')');
          } else if (j < code.size() && code[j] == '{') {
            m = MatchBrace(code, j);
          } else {
            ok = false;
            break;
          }
          if (m == npos) {
            ok = false;
            break;
          }
          j = SkipSpace(code, m + 1);
          if (j < code.size() && code[j] == ',') {
            ++j;
            continue;
          }
          break;
        }
        if (!ok) break;
        i = SkipSpace(code, j);
        continue;  // next char should be the body '{'
      }
      if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
        // Trailing return type: first top-level '{' or ';'.
        int depth = 0;
        size_t j = i + 2;
        for (; j < limit; ++j) {
          if (code[j] == '(' || code[j] == '<') ++depth;
          else if (code[j] == ')' || code[j] == '>') --depth;
          else if (code[j] == '{' && depth <= 0) break;
          else if (code[j] == ';' && depth <= 0) break;
        }
        if (j < limit && code[j] == '{') body = j;
        break;
      }
      if (IdentChar(c)) {
        std::string_view tok = TokenAt(code, i);
        i = SkipSpace(code, i + tok.size());
        if (i < code.size() && code[i] == '(' &&
            (tok == "noexcept" || tok.rfind("LQO_", 0) == 0)) {
          size_t m = MatchPair(code, i, '(', ')');
          if (m == npos) break;
          i = SkipSpace(code, m + 1);
        }
        continue;
      }
      break;
    }
    if (body == npos) continue;
    size_t end = MatchBrace(code, body);
    if (end == npos) continue;

    MethodRegion region;
    region.class_name = std::string(cls);
    region.method = std::string(method);
    region.begin = body;
    region.end = end;
    region.held = ParseRequires(code.substr(close, body - close));
    out.push_back(std::move(region));
    pos = body;  // nested definitions (local classes) are still scanned
  }
  return out;
}

// The lock-discipline walk over one method body.
void CheckLockDiscipline(const std::string& path, std::string_view code,
                         const LineIndex& lines, const CommentLookup& comments,
                         const MethodRegion& region, const ClassInfo& cls,
                         std::vector<Finding>* findings) {
  if (cls.guarded.empty()) return;

  // Required-held mutexes: LQO_REQUIRES on this definition or on the
  // in-class declaration of a method with this name.
  std::set<std::string> held_throughout(region.held.begin(),
                                        region.held.end());
  for (const RequiredLock& req : cls.requires_lock) {
    if (req.method == region.method) held_throughout.insert(req.mutex);
  }

  // Mutexes that matter for this class.
  std::set<std::string> mutexes;
  for (const GuardedMember& gm : cls.guarded) mutexes.insert(gm.mutex);

  struct Event {
    size_t pos;
    int kind;  // 0 = acquire, 1 = release, 2 = use
    std::string mutex;   // acquire/release
    std::string member;  // use
  };
  std::vector<Event> events;

  // RAII acquisitions: lock_guard/unique_lock/shared_lock/scoped_lock whose
  // constructor args name a tracked mutex.
  for (std::string_view tok :
       {"lock_guard", "unique_lock", "shared_lock", "scoped_lock"}) {
    for (size_t pos : FindTokens(code.substr(0, region.end), tok)) {
      if (pos < region.begin) continue;
      size_t i = SkipSpace(code, pos + tok.size());
      if (i < code.size() && code[i] == '<') {
        i = SkipSpace(code, SkipAngles(code, i));
      }
      std::string_view var = TokenAt(code, i);
      i = SkipSpace(code, i + var.size());
      if (i >= code.size() || code[i] != '(') continue;
      size_t close = MatchPair(code, i, '(', ')');
      if (close == npos) continue;
      std::string_view args = code.substr(i + 1, close - i - 1);
      for (const std::string& mutex : mutexes) {
        if (HasToken(args, mutex)) events.push_back({pos, 0, mutex, ""});
      }
    }
  }

  // Manual mutex_.lock()/.lock_shared() and .unlock()/.unlock_shared().
  for (const std::string& mutex : mutexes) {
    for (size_t pos : FindTokens(code.substr(0, region.end), mutex)) {
      if (pos < region.begin) continue;
      size_t i = SkipSpace(code, pos + mutex.size());
      if (i >= code.size() || code[i] != '.') continue;
      std::string_view call = TokenAt(code, SkipSpace(code, i + 1));
      if (call == "lock" || call == "lock_shared") {
        events.push_back({pos, 0, mutex, ""});
      } else if (call == "unlock" || call == "unlock_shared") {
        events.push_back({pos, 1, mutex, ""});
      }
    }
  }

  // Guarded member uses.
  for (const GuardedMember& gm : cls.guarded) {
    for (size_t pos : FindTokens(code.substr(0, region.end), gm.member)) {
      if (pos <= region.begin) continue;
      if (IsForeignAccess(code, pos)) continue;
      events.push_back({pos, 2, gm.mutex, gm.member});
    }
  }

  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return std::tie(a.pos, a.kind) < std::tie(b.pos, b.kind);
  });

  struct ActiveLock {
    std::string mutex;
    int depth;
  };
  std::vector<ActiveLock> active;
  int depth = 0;
  size_t next_event = 0;
  for (size_t i = region.begin; i <= region.end && i < code.size(); ++i) {
    while (next_event < events.size() && events[next_event].pos == i) {
      const Event& ev = events[next_event++];
      if (ev.kind == 0) {
        active.push_back({ev.mutex, depth});
      } else if (ev.kind == 1) {
        for (size_t k = active.size(); k-- > 0;) {
          if (active[k].mutex == ev.mutex) {
            active.erase(active.begin() + static_cast<long>(k));
            break;
          }
        }
      } else {
        bool covered = held_throughout.count(ev.mutex) > 0;
        for (const ActiveLock& lock : active) {
          if (lock.mutex == ev.mutex) covered = true;
        }
        if (!covered) {
          int line = lines.LineAt(ev.pos);
          Finding f;
          f.rule_id = "lock-discipline";
          f.file = path;
          f.line = line;
          f.message =
              "'" + ev.member + "' is guarded by '" + ev.mutex +
              "' (class " + cls.name +
              ") but no lock on it is held here; acquire "
              "lock_guard/unique_lock/shared_lock/scoped_lock(" + ev.mutex +
              ") before this use, annotate the method with LQO_REQUIRES(" +
              ev.mutex + "), or waive with // locked-by: " + ev.mutex +
              "(<reason>)";
          f.waived = comments.Waives(line, "lock-discipline") ||
                     LockedByWaives(comments.Block(line), ev.mutex) ||
                     LockedByWaives(comments.On(line - 1), ev.mutex);
          findings->push_back(std::move(f));
        }
      }
    }
    if (code[i] == '{') {
      ++depth;
    } else if (code[i] == '}') {
      --depth;
      // A lock recorded at depth D lives until the block at depth D closes,
      // i.e. until depth drops below D (a nested block returning to D must
      // not pop it).
      while (!active.empty() && active.back().depth > depth) {
        active.pop_back();
      }
    }
  }
}

// Cross-TU unordered-iter: range-for over a member whose unordered type was
// declared in another file. Same-file/paired-header sites are already
// reported by the per-file rule and deduplicated at fold time.
void CheckXtuUnorderedIter(const std::string& path, std::string_view code,
                           const LineIndex& lines,
                           const CommentLookup& comments,
                           const MethodRegion& region, const ClassInfo& cls,
                           std::vector<Finding>* findings) {
  if (cls.unordered_members.empty()) return;
  ForEachRangeFor(
      code, region.begin, region.end,
      [&](size_t pos, std::string_view range) {
        for (const std::string& member : cls.unordered_members) {
          if (!HasToken(range, member)) continue;
          int line = lines.LineAt(pos);
          Finding f;
          f.rule_id = "unordered-iter";
          f.file = path;
          f.line = line;
          f.message =
              "range-for over unordered member '" + member + "' of class " +
              cls.name + " (declared in " + cls.file +
              "): iteration order is unspecified; iterate sorted keys or "
              "waive with // lint: unordered-iter-ok(<reason>)";
          f.waived = comments.Waives(line, "unordered-iter");
          findings->push_back(std::move(f));
          break;
        }
      });
}

// The layer of a path under src/ ("src/engine/executor.cc" -> "engine"),
// or empty when the file is outside src/.
std::string_view LayerOfPath(std::string_view path) {
  if (path.rfind("src/", 0) != 0) return {};
  std::string_view rest = path.substr(4);
  size_t slash = rest.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : rest.substr(0, slash);
}

void CheckLayering(const std::string& path,
                   const std::vector<IncludeEdge>& includes,
                   const CommentLookup& comments,
                   std::vector<Finding>* findings) {
  std::string_view layer = LayerOfPath(path);
  if (layer.empty()) return;
  const LayerSpec* spec = FindLayer(layer);
  if (spec == nullptr) return;  // unknown directories are unconstrained
  for (const IncludeEdge& edge : includes) {
    size_t slash = edge.target.find('/');
    if (slash == std::string::npos) continue;
    std::string_view target_layer =
        std::string_view(edge.target).substr(0, slash);
    if (target_layer == layer) continue;
    if (FindLayer(target_layer) == nullptr) continue;  // not a src/ layer
    bool allowed = false;
    for (std::string_view dep : spec->may_include) {
      if (dep == target_layer) allowed = true;
    }
    if (allowed) continue;
    Finding f;
    f.rule_id = "layering";
    f.file = path;
    f.line = edge.line;
    f.message = "#include \"" + edge.target + "\": layer '" +
                std::string(layer) + "' must not depend on '" +
                std::string(target_layer) +
                "' (edge forbidden by the layering DAG in "
                "tools/lqo-lint/rules.cc)";
    f.waived = comments.Waives(edge.line, "layering");
    findings->push_back(std::move(f));
  }
}

std::vector<Finding> CrossTuFindings(const FileInput& input,
                                     const FileAnalysis& analysis,
                                     const ProjectIndex& index) {
  std::vector<Finding> out;
  std::string_view code = analysis.scrub.code;
  LineIndex lines(code);
  CommentLookup comments(analysis.scrub, lines);

  std::vector<MethodRegion> regions = analysis.inline_methods;
  std::vector<MethodRegion> out_of_line = FindOutOfLineMethods(code, index);
  regions.insert(regions.end(), out_of_line.begin(), out_of_line.end());

  for (const MethodRegion& region : regions) {
    auto it = index.classes.find(region.class_name);
    if (it == index.classes.end()) continue;
    CheckLockDiscipline(input.path, code, lines, comments, region, it->second,
                        &out);
    CheckXtuUnorderedIter(input.path, code, lines, comments, region,
                          it->second, &out);
  }
  CheckLayering(input.path, analysis.includes, comments, &out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule_id, a.message) <
           std::tie(b.line, b.rule_id, b.message);
  });
  // The same site can be reached through several regions (e.g. a class
  // re-opened by the token scan); collapse exact duplicates.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.line == b.line && a.rule_id == b.rule_id &&
                                 a.message == b.message;
                        }),
            out.end());
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Finding> AnalyzeFiles(std::vector<FileInput> files,
                                  ProjectIndex* index_out) {
  std::sort(files.begin(), files.end(),
            [](const FileInput& a, const FileInput& b) {
              return a.path < b.path;
            });
  files.erase(std::unique(files.begin(), files.end(),
                          [](const FileInput& a, const FileInput& b) {
                            return a.path == b.path;
                          }),
              files.end());

  // Auto-pair headers from the in-memory set (callers may pre-set).
  {
    std::map<std::string, size_t> by_path;
    for (size_t i = 0; i < files.size(); ++i) by_path[files[i].path] = i;
    for (FileInput& f : files) {
      if (!f.paired_header.empty()) continue;
      if (!(f.path.ends_with(".cc") || f.path.ends_with(".cpp"))) continue;
      std::string header = f.path.substr(0, f.path.rfind('.')) + ".h";
      auto it = by_path.find(header);
      if (it != by_path.end()) f.paired_header = files[it->second].content;
    }
  }

  // Phase 1: parallel scrub + per-file rules + index fragments, folded in
  // sorted path order (index-addressed slots, so any LQO_THREADS gives the
  // same fold).
  std::vector<FileAnalysis> per_file = ParallelMap(
      files.size(), [&](size_t i) { return AnalyzeOne(files[i]); });

  ProjectIndex index;
  for (size_t i = 0; i < files.size(); ++i) {
    const FileAnalysis& fa = per_file[i];
    for (const ClassInfo& cls : fa.classes) {
      auto [it, inserted] = index.classes.emplace(cls.name, cls);
      if (!inserted) {
        ClassInfo& merged = it->second;
        merged.guarded.insert(merged.guarded.end(), cls.guarded.begin(),
                              cls.guarded.end());
        merged.requires_lock.insert(merged.requires_lock.end(),
                                    cls.requires_lock.begin(),
                                    cls.requires_lock.end());
        merged.atomic_protocols.insert(cls.atomic_protocols.begin(),
                                       cls.atomic_protocols.end());
        merged.member_code.append(cls.member_code);
      }
    }
    if (!fa.includes.empty()) index.includes[files[i].path] = fa.includes;
    index.unordered_aliases.insert(index.unordered_aliases.end(),
                                   fa.aliases.begin(), fa.aliases.end());
  }
  std::sort(index.unordered_aliases.begin(), index.unordered_aliases.end());
  index.unordered_aliases.erase(
      std::unique(index.unordered_aliases.begin(),
                  index.unordered_aliases.end()),
      index.unordered_aliases.end());

  // Resolve unordered members per class against the project-wide alias set
  // (this is what makes the tracking cross-TU: an alias declared in one
  // header resolves members of classes declared anywhere).
  for (auto& [name, cls] : index.classes) {
    std::vector<std::string> names;
    std::vector<std::string> aliases = index.unordered_aliases;
    CollectUnorderedNames(cls.member_code, names, aliases);
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    cls.unordered_members = std::move(names);
  }
  // Dedup guarded-member entries (a member can carry both a // guards:
  // listing and an LQO_GUARDED_BY attribute).
  for (auto& [name, cls] : index.classes) {
    std::sort(cls.guarded.begin(), cls.guarded.end(),
              [](const GuardedMember& a, const GuardedMember& b) {
                return std::tie(a.member, a.mutex) <
                       std::tie(b.member, b.mutex);
              });
    cls.guarded.erase(std::unique(cls.guarded.begin(), cls.guarded.end(),
                                  [](const GuardedMember& a,
                                     const GuardedMember& b) {
                                    return a.member == b.member &&
                                           a.mutex == b.mutex;
                                  }),
                      cls.guarded.end());
  }

  // Phase 2: cross-TU rules, again parallel per file and folded in path
  // order.
  std::vector<std::vector<Finding>> extra =
      ParallelMap(files.size(), [&](size_t i) {
        return CrossTuFindings(files[i], per_file[i], index);
      });

  std::vector<Finding> all;
  for (size_t i = 0; i < files.size(); ++i) {
    // Per-file findings first; cross-TU findings that land on a line the
    // per-file pass already reported under the same rule are duplicates
    // (e.g. unordered-iter through the paired header) and are dropped.
    std::set<std::pair<int, std::string_view>> seen;
    for (const Finding& f : per_file[i].findings) {
      seen.insert({f.line, f.rule_id});
    }
    std::vector<Finding> merged = per_file[i].findings;
    for (Finding& f : extra[i]) {
      if (seen.count({f.line, f.rule_id})) continue;
      merged.push_back(std::move(f));
    }
    std::sort(merged.begin(), merged.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule_id) <
                       std::tie(b.line, b.rule_id);
              });
    all.insert(all.end(), std::make_move_iterator(merged.begin()),
               std::make_move_iterator(merged.end()));
  }
  if (index_out != nullptr) *index_out = std::move(index);
  return all;
}

std::vector<FileInput> LoadTree(const std::string& root,
                                const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& dir : dirs) {
    fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
        paths.push_back(fs::relative(entry.path(), root).generic_string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };

  std::vector<FileInput> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) {
    FileInput input;
    input.path = rel;
    input.content = slurp(fs::path(root) / rel);
    files.push_back(std::move(input));
  }
  return files;
}

std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& dirs) {
  return AnalyzeFiles(LoadTree(root, dirs));
}

}  // namespace lqo::lint
