// Machine-readable emission (--format=json|sarif) and the waiver-budget
// baseline. No external JSON dependency: emission is direct, and the
// baseline reader is a tiny purpose-built parser for the flat object that
// RenderBaseline writes (it tolerates arbitrary whitespace but is not a
// general JSON parser — the file is machine-generated).
#include <algorithm>
#include <cctype>
#include <cstdio>

#include "lqo-lint/lint.h"

namespace lqo::lint {
namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string Quoted(std::string_view s) {
  std::string out = "\"";
  AppendEscaped(&out, s);
  out.push_back('"');
  return out;
}

}  // namespace

std::string RenderJson(const std::vector<Finding>& findings) {
  int errors = 0;
  int waived = 0;
  for (const Finding& f : findings) (f.waived ? waived : errors)++;

  std::string out;
  out.reserve(findings.size() * 160 + 256);
  out.append("{\n  \"tool\": \"lqo-lint\",\n  \"errors\": ");
  out.append(std::to_string(errors));
  out.append(",\n  \"waived\": ");
  out.append(std::to_string(waived));
  out.append(",\n  \"findings\": [");
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out.append(i == 0 ? "\n" : ",\n");
    out.append("    {\"rule\": ");
    out.append(Quoted(f.rule_id));
    out.append(", \"file\": ");
    out.append(Quoted(f.file));
    out.append(", \"line\": ");
    out.append(std::to_string(f.line));
    out.append(", \"waived\": ");
    out.append(f.waived ? "true" : "false");
    out.append(", \"message\": ");
    out.append(Quoted(f.message));
    out.append("}");
  }
  out.append(findings.empty() ? "],\n" : "\n  ],\n");
  out.append("  \"tally\": {");
  bool first = true;
  for (const auto& [rule_id, tally] : Tally(findings)) {
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    ");
    out.append(Quoted(rule_id));
    out.append(": {\"errors\": ");
    out.append(std::to_string(tally.errors));
    out.append(", \"waived\": ");
    out.append(std::to_string(tally.waived));
    out.append("}");
  }
  out.append(first ? "}\n}\n" : "\n  }\n}\n");
  return out;
}

std::string RenderSarif(const std::vector<Finding>& findings) {
  std::string out;
  out.reserve(findings.size() * 256 + 1024);
  out.append(
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"lqo-lint\",\n"
      "          \"informationUri\": \"tools/lqo-lint/README.md\",\n"
      "          \"rules\": [");
  const std::vector<Rule>& rules = Rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    out.append(i == 0 ? "\n" : ",\n");
    out.append("            {\"id\": ");
    out.append(Quoted(rules[i].id));
    out.append(", \"shortDescription\": {\"text\": ");
    out.append(Quoted(rules[i].summary));
    out.append("}, \"helpUri\": \"tools/lqo-lint/README.md\"}");
  }
  out.append(
      "\n          ]\n"
      "        }\n"
      "      },\n"
      "      \"results\": [");
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const Rule* rule = FindRule(f.rule_id);
    bool error = rule == nullptr || rule->severity == Severity::kError;
    out.append(i == 0 ? "\n" : ",\n");
    out.append("        {\"ruleId\": ");
    out.append(Quoted(f.rule_id));
    out.append(", \"level\": ");
    out.append(error ? "\"error\"" : "\"warning\"");
    out.append(
        ", \"message\": {\"text\": ");
    out.append(Quoted(f.message));
    out.append(
        "}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
        "{\"uri\": ");
    out.append(Quoted(f.file));
    out.append("}, \"region\": {\"startLine\": ");
    out.append(std::to_string(f.line));
    out.append("}}}]");
    if (f.waived) {
      out.append(
          ", \"suppressions\": [{\"kind\": \"inSource\", "
          "\"justification\": \"in-source lint waiver comment\"}]");
    }
    out.append("}");
  }
  out.append(
      findings.empty() ? "]\n" : "\n      ]\n");
  out.append(
      "    }\n"
      "  ]\n"
      "}\n");
  return out;
}

std::string RenderBaseline(const std::vector<Finding>& findings) {
  std::string out;
  out.append("{\n  \"tool\": \"lqo-lint waiver budget\",\n");
  out.append(
      "  \"note\": \"per-rule waived-finding counts; regenerate with "
      "lqo-lint --write-baseline\",\n");
  out.append("  \"waived\": {");
  bool first = true;
  for (const auto& [rule_id, tally] : Tally(findings)) {
    if (tally.waived == 0) continue;
    out.append(first ? "\n" : ",\n");
    first = false;
    out.append("    ");
    out.append(Quoted(rule_id));
    out.append(": ");
    out.append(std::to_string(tally.waived));
  }
  out.append(first ? "}\n}\n" : "\n  }\n}\n");
  return out;
}

std::vector<std::string> CheckBaseline(const std::vector<Finding>& findings,
                                       std::string_view baseline_json) {
  // Parse the flat {"rule": count, ...} object under "waived".
  std::map<std::string, int> budget;
  size_t pos = baseline_json.find("\"waived\"");
  bool parsed = false;
  if (pos != std::string_view::npos) {
    size_t open = baseline_json.find('{', pos);
    size_t close =
        open == std::string_view::npos
            ? std::string_view::npos
            : baseline_json.find('}', open);
    if (close != std::string_view::npos) {
      parsed = true;
      size_t i = open + 1;
      while (i < close) {
        size_t q1 = baseline_json.find('"', i);
        if (q1 == std::string_view::npos || q1 >= close) break;
        size_t q2 = baseline_json.find('"', q1 + 1);
        if (q2 == std::string_view::npos || q2 >= close) {
          parsed = false;
          break;
        }
        std::string key(baseline_json.substr(q1 + 1, q2 - q1 - 1));
        size_t colon = baseline_json.find(':', q2);
        if (colon == std::string_view::npos || colon >= close) {
          parsed = false;
          break;
        }
        size_t n = colon + 1;
        while (n < close &&
               std::isspace(static_cast<unsigned char>(baseline_json[n]))) {
          ++n;
        }
        int value = 0;
        bool any = false;
        while (n < close && baseline_json[n] >= '0' &&
               baseline_json[n] <= '9') {
          value = value * 10 + (baseline_json[n] - '0');
          ++n;
          any = true;
        }
        if (!any) {
          parsed = false;
          break;
        }
        budget[key] = value;
        i = n;
        size_t comma = baseline_json.find(',', n);
        if (comma == std::string_view::npos || comma >= close) break;
        i = comma + 1;
      }
    }
  }
  if (!parsed) {
    return {"baseline is unreadable (no valid \"waived\" object); regenerate "
            "with lqo-lint --write-baseline"};
  }

  std::map<std::string, int> current;
  for (const auto& [rule_id, tally] : Tally(findings)) {
    if (tally.waived > 0) current[std::string(rule_id)] = tally.waived;
  }

  std::vector<std::string> problems;
  for (const auto& [rule, count] : current) {
    auto it = budget.find(rule);
    int allowed = it == budget.end() ? 0 : it->second;
    if (count > allowed) {
      problems.push_back(
          "waiver budget exceeded for rule '" + rule + "': " +
          std::to_string(count) + " waived finding(s), baseline allows " +
          std::to_string(allowed) +
          " — new waivers need review; after review, regenerate with "
          "lqo-lint --write-baseline");
    } else if (count < allowed) {
      problems.push_back(
          "baseline is stale for rule '" + rule + "': " +
          std::to_string(count) + " waived finding(s), baseline records " +
          std::to_string(allowed) +
          " — waivers were removed (good); regenerate with "
          "lqo-lint --write-baseline so the budget ratchets down");
    }
  }
  for (const auto& [rule, allowed] : budget) {
    if (allowed > 0 && current.find(rule) == current.end()) {
      problems.push_back(
          "baseline is stale for rule '" + rule + "': 0 waived finding(s), "
          "baseline records " + std::to_string(allowed) +
          " — regenerate with lqo-lint --write-baseline so the budget "
          "ratchets down");
    }
  }
  std::sort(problems.begin(), problems.end());
  return problems;
}

}  // namespace lqo::lint
