#ifndef LQO_TOOLS_LQO_LINT_TEXTUTIL_H_
#define LQO_TOOLS_LQO_LINT_TEXTUTIL_H_

#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <vector>

// Internal token-level helpers shared by the per-file rule pass (lint.cc)
// and the whole-program pass (project.cc). Everything operates on scrubbed
// code (comments and literal contents blanked, newlines preserved), so a
// byte offset is always a code offset.
namespace lqo::lint::text {

inline bool IdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

inline bool HexChar(char c) {
  return std::isxdigit(static_cast<unsigned char>(c));
}

inline size_t SkipSpace(std::string_view s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// All positions where `token` occurs with non-identifier characters on both
/// sides.
inline std::vector<size_t> FindTokens(std::string_view code,
                                      std::string_view token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || !IdentChar(code[pos - 1]);
    size_t end = pos + token.size();
    bool right_ok = end >= code.size() || !IdentChar(code[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

inline bool HasToken(std::string_view text, std::string_view token) {
  return !FindTokens(text, token).empty();
}

/// Accepts `std::tok` and `::std::tok`, with optional internal spaces,
/// where `pos` is the offset of `tok`.
inline bool PrecededByStd(std::string_view code, size_t pos) {
  size_t i = pos;
  auto skip_back_space = [&](size_t j) {
    while (j > 0 && (code[j - 1] == ' ' || code[j - 1] == '\t')) --j;
    return j;
  };
  i = skip_back_space(i);
  if (i < 2 || code[i - 1] != ':' || code[i - 2] != ':') return false;
  i = skip_back_space(i - 2);
  return i >= 3 && code.compare(i - 3, 3, "std") == 0 &&
         (i == 3 || !IdentChar(code[i - 4]));
}

/// 1-based line number of a byte offset, via precomputed line starts.
struct LineIndex {
  std::vector<size_t> starts;  // starts[k] = offset of line k+1
  explicit LineIndex(std::string_view code) {
    starts.push_back(0);
    for (size_t i = 0; i < code.size(); ++i) {
      if (code[i] == '\n') starts.push_back(i + 1);
    }
  }
  int LineAt(size_t pos) const {
    auto it = std::upper_bound(starts.begin(), starts.end(), pos);
    return static_cast<int>(it - starts.begin());
  }
};

/// True when `comment` contains `lint: <id>-ok(<nonempty reason>)`.
inline bool CommentWaives(std::string_view comment, std::string_view id) {
  size_t pos = 0;
  while ((pos = comment.find("lint:", pos)) != std::string_view::npos) {
    size_t i = SkipSpace(comment, pos + 5);
    std::string want = std::string(id) + "-ok(";
    if (comment.compare(i, want.size(), want) == 0) {
      size_t close = comment.find(')', i + want.size());
      if (close != std::string_view::npos) {
        std::string_view reason =
            comment.substr(i + want.size(), close - i - want.size());
        if (reason.find_first_not_of(" \t") != std::string_view::npos) {
          return true;
        }
      }
    }
    pos += 5;
  }
  return false;
}

/// Offset of the matching close brace for the `{` at `open`, or npos when
/// the braces never balance before `code` ends.
inline size_t MatchBrace(std::string_view code, size_t open) {
  int depth = 0;
  for (size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}') {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string_view::npos;
}

/// Walks every range-for statement whose head starts inside [begin, end) and
/// hands the callback the offset of the `for` token and the range expression
/// (the text between the top-level `:` and the closing paren).
template <typename Fn>
void ForEachRangeFor(std::string_view code, size_t begin, size_t end, Fn&& fn) {
  for (size_t pos : FindTokens(code.substr(0, end), "for")) {
    if (pos < begin) continue;
    size_t open = SkipSpace(code, pos + 3);
    if (open >= code.size() || code[open] != '(') continue;
    int depth = 0;
    size_t colon = std::string_view::npos;
    size_t close = std::string_view::npos;
    for (size_t i = open; i < code.size() && i < open + 600; ++i) {
      char ch = code[i];
      if (ch == '(' || ch == '[' || ch == '{') ++depth;
      if (ch == ')' || ch == ']' || ch == '}') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (ch == ';' && depth == 1) break;  // classic for-loop
      if (ch == ':' && depth == 1 && colon == std::string_view::npos) {
        bool scope = (i > 0 && code[i - 1] == ':') ||
                     (i + 1 < code.size() && code[i + 1] == ':');
        if (!scope) colon = i;
      }
    }
    if (colon == std::string_view::npos || close == std::string_view::npos)
      continue;
    fn(pos, code.substr(colon + 1, close - colon - 1));
  }
}

}  // namespace lqo::lint::text

#endif  // LQO_TOOLS_LQO_LINT_TEXTUTIL_H_
