#include "lqo-lint/lint.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "lqo-lint/textutil.h"

namespace lqo::lint {

// The rule catalog lives in rules.cc; this file holds the lexer and the
// per-file check implementations. Whole-program analysis (the project
// index and the cross-TU rules) lives in project.cc; shared token helpers
// in textutil.h.

using text::CommentWaives;
using text::FindTokens;
using text::HasToken;
using text::HexChar;
using text::IdentChar;
using text::LineIndex;
using text::PrecededByStd;
using text::SkipSpace;

// ---------------------------------------------------------------------------
// Lexer: blank out comments and string/char literal contents
// ---------------------------------------------------------------------------

ScrubResult Scrub(std::string_view src) {
  ScrubResult out;
  out.code.reserve(src.size());
  out.line_comments.assign(2, "");
  size_t line = 1;
  auto comment_char = [&](char c) {
    if (out.line_comments.size() <= line) out.line_comments.resize(line + 1);
    out.line_comments[line].push_back(c);
  };
  auto emit_blank = [&](char c) { out.code.push_back(c == '\n' ? '\n' : ' '); };

  size_t i = 0;
  size_t n = src.size();
  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      out.code.push_back('\n');
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      emit_blank(c);
      emit_blank(src[i + 1]);
      i += 2;
      while (i < n && src[i] != '\n') {
        comment_char(src[i]);
        emit_blank(src[i]);
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      emit_blank(c);
      emit_blank(src[i + 1]);
      i += 2;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          out.code.push_back('\n');
          ++line;
        } else {
          comment_char(src[i]);
          out.code.push_back(' ');
        }
        ++i;
      }
      if (i + 1 < n) {
        emit_blank('*');
        emit_blank('/');
        i += 2;
      }
      continue;
    }
    if (c == '"') {
      // Raw string? Look back over the prefix (R, u8R, uR, UR, LR) ensuring
      // it is not the tail of a longer identifier.
      bool raw = false;
      if (!out.code.empty() && out.code.back() == 'R') {
        size_t k = out.code.size() - 1;  // position of 'R'
        size_t pre = k;
        while (pre > 0 && IdentChar(out.code[pre - 1])) --pre;
        std::string_view prefix(out.code.data() + pre, k - pre);
        raw = prefix.empty() || prefix == "u8" || prefix == "u" ||
              prefix == "U" || prefix == "L";
      }
      out.code.push_back('"');
      ++i;
      if (raw) {
        std::string delim;
        while (i < n && src[i] != '(' && src[i] != '\n') {
          delim.push_back(src[i]);
          out.code.push_back(' ');
          ++i;
        }
        if (i < n && src[i] == '(') {
          out.code.push_back(' ');
          ++i;
        }
        std::string close = ")" + delim + "\"";
        while (i < n) {
          if (src.compare(i, close.size(), close) == 0) {
            for (size_t k = 0; k + 1 < close.size(); ++k) out.code.push_back(' ');
            out.code.push_back('"');
            i += close.size();
            break;
          }
          if (src[i] == '\n') {
            out.code.push_back('\n');
            ++line;
          } else {
            out.code.push_back(' ');
          }
          ++i;
        }
      } else {
        while (i < n && src[i] != '"' && src[i] != '\n') {
          if (src[i] == '\\' && i + 1 < n) {
            out.code.push_back(' ');
            out.code.push_back(' ');
            i += 2;
            continue;
          }
          out.code.push_back(' ');
          ++i;
        }
        if (i < n && src[i] == '"') {
          out.code.push_back('"');
          ++i;
        }
      }
      continue;
    }
    if (c == '\'') {
      // C++14 digit separator (1'000'000): keep as code, not a char literal.
      bool separator = !out.code.empty() && HexChar(out.code.back()) &&
                       i + 1 < n && HexChar(src[i + 1]);
      out.code.push_back('\'');
      ++i;
      if (separator) continue;
      while (i < n && src[i] != '\'' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n) {
          out.code.push_back(' ');
          out.code.push_back(' ');
          i += 2;
          continue;
        }
        out.code.push_back(' ');
        ++i;
      }
      if (i < n && src[i] == '\'') {
        out.code.push_back('\'');
        ++i;
      }
      continue;
    }
    out.code.push_back(c);
    ++i;
  }
  return out;
}

void CollectUnorderedNames(std::string_view code,
                           std::vector<std::string>& names,
                           std::vector<std::string>& aliases) {
  for (std::string_view tok :
       {"unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"}) {
    for (size_t pos : FindTokens(code, tok)) {
      size_t i = SkipSpace(code, pos + tok.size());
      if (i >= code.size() || code[i] != '<') continue;
      // Balance template angles; `>>` closes two.
      int depth = 0;
      while (i < code.size()) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>') {
          --depth;
          if (depth == 0) break;
        }
        if (code[i] == ';') break;  // malformed / multi-line; give up
        ++i;
      }
      if (i >= code.size() || code[i] != '>') continue;
      ++i;
      // `using Alias = std::unordered_map<...>;` — record the alias.
      size_t stmt_begin = code.find_last_of(";{}", pos);
      stmt_begin = stmt_begin == std::string_view::npos ? 0 : stmt_begin + 1;
      std::string_view head = code.substr(stmt_begin, pos - stmt_begin);
      if (HasToken(head, "using") && head.find('=') != std::string_view::npos) {
        size_t u = FindTokens(head, "using").front() + 5;
        u = SkipSpace(head, u);
        size_t e = u;
        while (e < head.size() && IdentChar(head[e])) ++e;
        if (e > u) aliases.push_back(std::string(head.substr(u, e - u)));
        continue;
      }
      // Skip qualifiers between the type and the declared name.
      while (true) {
        i = SkipSpace(code, i);
        if (i < code.size() && (code[i] == '&' || code[i] == '*')) {
          ++i;
          continue;
        }
        if (code.compare(i, 5, "const") == 0 &&
            (i + 5 >= code.size() || !IdentChar(code[i + 5]))) {
          i += 5;
          continue;
        }
        break;
      }
      size_t e = i;
      while (e < code.size() && IdentChar(code[e])) ++e;
      if (e == i) continue;  // no declared name (temporary, return type...)
      size_t after = SkipSpace(code, e);
      // `name(` is a function returning the container, not a variable.
      if (after < code.size() && code[after] == '(') continue;
      names.push_back(std::string(code.substr(i, e - i)));
    }
  }
  // Declarations through aliases: `CacheMap cache_;`
  for (const std::string& alias : aliases) {
    for (size_t pos : FindTokens(code, alias)) {
      size_t i = SkipSpace(code, pos + alias.size());
      size_t e = i;
      while (e < code.size() && IdentChar(code[e])) ++e;
      if (e == i) continue;
      size_t after = SkipSpace(code, e);
      if (after < code.size() && code[after] == '(') continue;
      names.push_back(std::string(code.substr(i, e - i)));
    }
  }
}

namespace {

std::string_view StatementAt(std::string_view code, size_t start,
                             size_t max_len = 600) {
  size_t end = start;
  while (end < code.size() && end - start < max_len && code[end] != ';' &&
         code[end] != '{') {
    ++end;
  }
  return code.substr(start, end - start);
}

class Linter {
 public:
  Linter(const FileInput& input, const ScrubResult& scrub)
      : input_(input),
        code_(scrub.code),
        comments_(scrub.line_comments),
        lines_(code_) {}

  std::vector<Finding> Run() {
    const bool is_header = IsHeader(input_.path);
    CheckBannedTokens();
    CheckUnorderedIter();
    CheckParallelReduction();
    CheckRawThread();
    CheckMutexGuards();
    CheckAtomicComment();
    CheckHotLoopGrowth();
    CheckRawIntrinsics();
    if (is_header) {
      CheckHeaderGuard();
      CheckUsingNamespace();
      CheckHeaderMutableState();
    }
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule_id) < std::tie(b.line, b.rule_id);
              });
    return std::move(findings_);
  }

  static bool IsHeader(std::string_view path) {
    return path.ends_with(".h") || path.ends_with(".hpp");
  }

 private:
  std::string_view CommentOn(int line) const {
    if (line < 1 || static_cast<size_t>(line) >= comments_.size()) return {};
    return comments_[static_cast<size_t>(line)];
  }

  // True when the scrubbed code of `line` is blank, i.e. the line holds only
  // comments/whitespace.
  bool LineCodeBlank(int line) const {
    if (line < 1 || static_cast<size_t>(line) > lines_.starts.size()) {
      return false;
    }
    size_t begin = lines_.starts[static_cast<size_t>(line) - 1];
    size_t end = static_cast<size_t>(line) < lines_.starts.size()
                     ? lines_.starts[static_cast<size_t>(line)]
                     : code_.size();
    for (size_t i = begin; i < end; ++i) {
      if (!std::isspace(static_cast<unsigned char>(code_[i]))) return false;
    }
    return true;
  }

  // Searches the comment on `line` and the contiguous comment-only block
  // above it for `needle` (used by mutex-guards: a multi-line // guards:
  // comment naturally sits right above the declaration).
  bool CommentBlockContains(int line, std::string_view needle) const {
    if (CommentOn(line).find(needle) != std::string_view::npos) return true;
    for (int l = line - 1; l >= 1; --l) {
      if (CommentOn(l).empty() || !LineCodeBlank(l)) break;
      if (CommentOn(l).find(needle) != std::string_view::npos) return true;
    }
    return false;
  }

  void Report(std::string_view rule_id, size_t pos, std::string message) {
    int line = lines_.LineAt(pos);
    ReportLine(rule_id, line, std::move(message));
  }

  void ReportLine(std::string_view rule_id, int line, std::string message) {
    Finding f;
    f.rule_id = rule_id;
    f.file = input_.path;
    f.line = line;
    f.message = std::move(message);
    f.waived = CommentWaives(CommentOn(line), rule_id) ||
               CommentWaives(CommentOn(line - 1), rule_id);
    findings_.push_back(std::move(f));
  }

  bool NextIs(size_t pos, char want) const {
    size_t i = SkipSpace(code_, pos);
    return i < code_.size() && code_[i] == want;
  }

  // --- determinism: rand / random-device / wall-clock / exec-policy --------

  void CheckBannedTokens() {
    for (std::string_view tok : {"rand", "srand", "rand_r"}) {
      for (size_t pos : FindTokens(code_, tok)) {
        if (!NextIs(pos + tok.size(), '(')) continue;
        Report("rand", pos,
               std::string(tok) + "() draws from hidden global state; use "
               "lqo::Rng with an explicit seed");
      }
    }
    for (size_t pos : FindTokens(code_, "random_device")) {
      Report("random-device", pos,
             "std::random_device is nondeterministic entropy; seed lqo::Rng "
             "explicitly");
    }
    for (std::string_view tok : {"time", "gettimeofday", "localtime", "gmtime"}) {
      for (size_t pos : FindTokens(code_, tok)) {
        if (!NextIs(pos + tok.size(), '(')) continue;
        Report("wall-clock", pos,
               std::string(tok) + "() reads the wall clock; results must not "
               "depend on when the process runs");
      }
    }
    for (size_t pos : FindTokens(code_, "system_clock")) {
      Report("wall-clock", pos,
             "std::chrono::system_clock is wall-clock time; use steady_clock "
             "for durations, constants for seeds");
    }
    for (size_t pos : FindTokens(code_, "execution")) {
      if (!PrecededByStd(code_, pos)) continue;
      Report("exec-policy", pos - 5,
             "std::execution policies bypass the deterministic ThreadPool; "
             "use ParallelFor/ParallelMap");
    }
  }

  // --- determinism: unordered-iter -----------------------------------------

  void CheckUnorderedIter() {
    std::vector<std::string> names;
    std::vector<std::string> aliases;
    CollectUnorderedNames(code_, names, aliases);
    if (!input_.paired_header.empty()) {
      ScrubResult header = Scrub(input_.paired_header);
      CollectUnorderedNames(header.code, names, aliases);
    }
    if (names.empty()) return;

    text::ForEachRangeFor(
        code_, 0, code_.size(), [&](size_t pos, std::string_view range) {
          for (const std::string& name : names) {
            if (!HasToken(range, name)) continue;
            Report("unordered-iter", pos,
                   "range-for over unordered container '" + name +
                       "': iteration order is unspecified; iterate sorted "
                       "keys or waive with "
                       "// lint: unordered-iter-ok(<reason>)");
            break;
          }
        });
  }
  // --- determinism: parallel-reduction -------------------------------------

  // Names declared (anywhere in `code`) with scalar double/float type —
  // locals, members and parameters alike. Template arguments
  // (`vector<double>`) and function declarations (`double Predict(`) never
  // match: the token after them is not a plain declared identifier.
  static void CollectFloatScalarNames(std::string_view code,
                                      std::vector<std::string>& names) {
    for (std::string_view tok : {"double", "float"}) {
      for (size_t pos : FindTokens(code, tok)) {
        size_t i = SkipSpace(code, pos + tok.size());
        if (i < code.size() && code[i] == '&') i = SkipSpace(code, i + 1);
        size_t e = i;
        while (e < code.size() && IdentChar(code[e])) ++e;
        if (e == i) continue;  // `double>` / `double*` / `double(...)` cast
        size_t after = SkipSpace(code, e);
        // `double Name(` declares a function, not an accumulator.
        if (after < code.size() && code[after] == '(') continue;
        names.push_back(std::string(code.substr(i, e - i)));
      }
    }
  }

  // `sum += x` on a by-reference-captured double/float inside a
  // ParallelFor/ParallelMap body is a cross-task reduction: a data race,
  // and a scheduling-dependent reassociation of float additions even if it
  // were locked. Index-addressed writes (`out[i] += ...`) and accumulators
  // declared inside the lambda body are the sanctioned patterns and are
  // exempt; a deliberate deterministic fold is stated with an
  // // ordered-reduction: comment on the site.
  void CheckParallelReduction() {
    std::vector<std::string> names;
    CollectFloatScalarNames(code_, names);
    if (!input_.paired_header.empty()) {
      ScrubResult header = Scrub(input_.paired_header);
      CollectFloatScalarNames(header.code, names);
    }
    if (names.empty()) return;

    for (std::string_view tok : {"ParallelFor", "ParallelMap"}) {
      for (size_t pos : FindTokens(code_, tok)) {
        // Locate the lambda: the `[` capture list shortly after the call,
        // then the `{...}` body by brace balance.
        size_t open = code_.find('[', pos);
        if (open == std::string_view::npos || open > pos + 300) continue;
        size_t close = code_.find(']', open);
        if (close == std::string_view::npos) continue;
        std::string_view capture = code_.substr(open + 1, close - open - 1);
        // Only by-reference captures can alias an outer accumulator.
        if (capture.find('&') == std::string_view::npos) continue;
        size_t body_open = code_.find('{', close);
        if (body_open == std::string_view::npos) continue;
        int depth = 0;
        size_t body_close = body_open;
        while (body_close < code_.size()) {
          if (code_[body_close] == '{') ++depth;
          if (code_[body_close] == '}') {
            --depth;
            if (depth == 0) break;
          }
          ++body_close;
        }
        if (body_close >= code_.size()) continue;
        std::string_view body =
            code_.substr(body_open, body_close - body_open + 1);
        // Accumulators declared inside the body are task-local: exempt.
        std::vector<std::string> locals;
        CollectFloatScalarNames(body, locals);

        size_t p = 0;
        while ((p = body.find("+=", p)) != std::string_view::npos) {
          size_t global = body_open + p;
          p += 2;
          // Scan back over the lhs.
          size_t j = global;
          while (j > 0 && (code_[j - 1] == ' ' || code_[j - 1] == '\t')) --j;
          if (j == 0) continue;
          // `out[i] +=` / `f(x) +=`: index-addressed slot, the sanctioned
          // pattern — every task owns a distinct element.
          if (code_[j - 1] == ']' || code_[j - 1] == ')') continue;
          size_t e = j;
          size_t s = j;
          while (s > 0 && IdentChar(code_[s - 1])) --s;
          if (s == e) continue;
          // Member access (`obj.x +=`): the object expression decides
          // ownership; out of scope for this textual pass.
          if (s > 0 && (code_[s - 1] == '.' ||
                        (s > 1 && code_[s - 2] == '-' && code_[s - 1] == '>'))) {
            continue;
          }
          std::string name(code_.substr(s, e - s));
          if (std::find(locals.begin(), locals.end(), name) != locals.end())
            continue;
          if (std::find(names.begin(), names.end(), name) == names.end())
            continue;
          int line = lines_.LineAt(global);
          if (CommentBlockContains(line, "ordered-reduction:")) continue;
          ReportLine("parallel-reduction", line,
                     "float accumulation '" + name + " +=' through a "
                     "by-reference capture in a " + std::string(tok) +
                     " body races and reassociates; reduce into "
                     "index-addressed slots and fold serially, or state the "
                     "determinism argument with // ordered-reduction:");
        }
      }
    }
  }

  // --- concurrency: raw-thread ---------------------------------------------

  void CheckRawThread() {
    if (input_.path.find("common/thread_pool.") != std::string::npos) return;
    for (size_t pos : FindTokens(code_, "thread")) {
      if (!PrecededByStd(code_, pos)) continue;
      // std::thread::id / std::thread::hardware_concurrency are harmless.
      size_t after = SkipSpace(code_, pos + 6);
      if (after + 1 < code_.size() && code_[after] == ':' &&
          code_[after + 1] == ':') {
        continue;
      }
      Report("raw-thread", pos,
             "raw std::thread bypasses the deterministic ThreadPool; use "
             "ParallelFor/ParallelMap or ThreadPool::Submit");
    }
    for (std::string_view tok : {"jthread", "async"}) {
      for (size_t pos : FindTokens(code_, tok)) {
        if (!PrecededByStd(code_, pos)) continue;
        Report("raw-thread", pos,
               "std::" + std::string(tok) +
                   " spawns threads outside the deterministic ThreadPool");
      }
    }
    for (size_t pos : FindTokens(code_, "detach")) {
      if (!NextIs(pos + 6, '(')) continue;
      bool member = pos > 0 && (code_[pos - 1] == '.' ||
                                (pos > 1 && code_[pos - 2] == '-' &&
                                 code_[pos - 1] == '>'));
      if (!member) continue;
      Report("raw-thread", pos,
             "detach()ed threads outlive their owner and race teardown");
    }
    for (size_t pos : FindTokens(code_, "thread_local")) {
      Report("raw-thread", pos,
             "mutable thread_local state makes results depend on which "
             "worker ran the task");
    }
  }

  // --- concurrency: mutex-guards -------------------------------------------

  void CheckMutexGuards() {
    for (std::string_view tok : {"mutex", "shared_mutex"}) {
      for (size_t pos : FindTokens(code_, tok)) {
        if (!PrecededByStd(code_, pos)) continue;
        // Skip template arguments: lock_guard<std::mutex>, ...
        size_t before = pos;
        while (before > 0 && (code_[before - 1] == ' ' || code_[before - 1] == ':'))
          --before;
        if (before >= 4 && code_.compare(before - 3, 3, "std") == 0) before -= 3;
        while (before > 0 && std::isspace(static_cast<unsigned char>(
                                  code_[before - 1])))
          --before;
        if (before > 0 && (code_[before - 1] == '<' || code_[before - 1] == ','))
          continue;
        // Declaration shape: identifier then `;` (or `{...};`).
        size_t i = SkipSpace(code_, pos + tok.size());
        size_t e = i;
        while (e < code_.size() && IdentChar(code_[e])) ++e;
        if (e == i) continue;  // `std::mutex&`, return types, ...
        size_t after = SkipSpace(code_, e);
        if (after >= code_.size() ||
            (code_[after] != ';' && code_[after] != '{')) {
          continue;
        }
        int line = lines_.LineAt(pos);
        if (CommentBlockContains(line, "guards:")) continue;
        ReportLine("mutex-guards", line,
                   "std::" + std::string(tok) + " '" +
                       std::string(code_.substr(i, e - i)) +
                       "' needs a // guards: comment naming the fields it "
                       "protects");
      }
    }
  }

  // --- concurrency: atomic-comment -----------------------------------------

  // Every direct `std::atomic<...> name;` declaration must carry a comment
  // (same line or the contiguous comment block above) stating its protocol.
  // Atomics nested in template arguments (vector<atomic<int>>) are the
  // container's concern, not a declaration here.
  void CheckAtomicComment() {
    for (size_t pos : FindTokens(code_, "atomic")) {
      if (!PrecededByStd(code_, pos)) continue;
      size_t i = SkipSpace(code_, pos + 6);
      if (i >= code_.size() || code_[i] != '<') continue;
      int depth = 0;
      while (i < code_.size()) {
        if (code_[i] == '<') ++depth;
        if (code_[i] == '>') {
          --depth;
          if (depth == 0) break;
        }
        if (code_[i] == ';') break;
        ++i;
      }
      if (i >= code_.size() || code_[i] != '>') continue;
      i = SkipSpace(code_, i + 1);
      size_t e = i;
      while (e < code_.size() && IdentChar(code_[e])) ++e;
      if (e == i) continue;  // template argument / return type / cast
      size_t after = SkipSpace(code_, e);
      if (after >= code_.size() ||
          (code_[after] != ';' && code_[after] != '{' && code_[after] != '=')) {
        continue;
      }
      int line = lines_.LineAt(pos);
      if (!CommentOn(line).empty()) continue;
      bool documented = false;
      for (int l = line - 1; l >= 1; --l) {
        if (CommentOn(l).empty() || !LineCodeBlank(l)) break;
        documented = true;
        break;
      }
      if (documented) continue;
      ReportLine("atomic-comment", line,
                 "std::atomic '" + std::string(code_.substr(i, e - i)) +
                     "' needs a comment stating its protocol (what it "
                     "counts/signals and why the ordering is sound)");
    }
  }

  // --- hygiene: hot-loop-growth --------------------------------------------

  // Per-row container growth (member push_back/emplace_back) inside a
  // nested loop of a hot-path file (engine/, *kernel*) defeats the batched
  // execution substrate: each call re-checks capacity and may reallocate
  // mid-scan, where the vectorized kernels size once per batch and write
  // through a raw pointer (GatherAppend in engine/vec_batch.h). Depth-1
  // loops (one growth per outer item, e.g. scatter loops) are accepted;
  // only growth inside an inner loop — per row per something — fires.
  void CheckHotLoopGrowth() {
    if (input_.path.find("engine/") == std::string::npos &&
        input_.path.find("kernel") == std::string::npos) {
      return;
    }
    std::vector<size_t> sites;
    for (std::string_view tok : {"push_back", "emplace_back"}) {
      for (size_t pos : FindTokens(code_, tok)) {
        bool member = pos > 0 && (code_[pos - 1] == '.' ||
                                  (pos > 1 && code_[pos - 2] == '-' &&
                                   code_[pos - 1] == '>'));
        if (member && NextIs(pos + tok.size(), '(')) sites.push_back(pos);
      }
    }
    if (sites.empty()) return;
    std::sort(sites.begin(), sites.end());

    // One pass tracking brace scopes; a scope whose statement head contains
    // for/while/do is a loop scope. `;` separates statements only at paren
    // depth 0, so for-loop heads (which hold `;`s inside their parens) stay
    // attached to their brace.
    std::vector<char> scopes;  // 'l' = loop, 'o' = other
    size_t stmt_start = 0;
    int paren_depth = 0;
    size_t next_site = 0;
    for (size_t i = 0; i < code_.size() && next_site < sites.size(); ++i) {
      if (i == sites[next_site]) {
        ++next_site;
        auto loops = std::count(scopes.begin(), scopes.end(), 'l');
        if (loops >= 2) {
          Report("hot-loop-growth", i,
                 "per-row container growth inside a nested loop of a "
                 "hot-path file; size once per batch and gather "
                 "(engine/vec_batch.h), or waive a deliberate scalar path "
                 "with // lint: hot-loop-growth-ok(<reason>)");
        }
      }
      char c = code_[i];
      if (c == '(') {
        ++paren_depth;
      } else if (c == ')') {
        if (paren_depth > 0) --paren_depth;
      } else if (c == '{') {
        std::string_view head = code_.substr(stmt_start, i - stmt_start);
        bool loop = HasToken(head, "for") || HasToken(head, "while") ||
                    HasToken(head, "do");
        scopes.push_back(loop ? 'l' : 'o');
        stmt_start = i + 1;
      } else if (c == '}') {
        if (!scopes.empty()) scopes.pop_back();
        stmt_start = i + 1;
      } else if (c == ';' && paren_depth == 0) {
        stmt_start = i + 1;
      }
    }
  }

  // Raw SIMD intrinsics are confined to the dispatch layer's kernel files —
  // engine/simd.{h,cc} and the aggregation kernels in
  // engine/agg_kernels.{h,cc}, which follow the identical per-level
  // table/ActiveLevel() discipline — everywhere else must go through a
  // dispatched kernel table, so every kernel has a scalar reference,
  // per-level bit-equality coverage, and an LQO_SIMD off-switch.
  void CheckRawIntrinsics() {
    if (input_.path.find("engine/simd.") != std::string::npos) return;
    if (input_.path.find("engine/agg_kernels.") != std::string::npos) return;
    for (std::string_view header :
         {"immintrin.h", "emmintrin.h", "smmintrin.h", "nmmintrin.h",
          "tmmintrin.h", "pmmintrin.h", "xmmintrin.h", "x86intrin.h",
          "arm_neon.h"}) {
      size_t pos = 0;
      while ((pos = code_.find(header, pos)) != std::string_view::npos) {
        Report("raw-intrinsics", pos,
               "intrinsic header <" + std::string(header) +
                   "> outside engine/simd.*; add the kernel to the dispatch "
                   "table in engine/simd.cc instead, or waive with "
                   "// lint: raw-intrinsics-ok(<reason>)");
        pos += header.size();
      }
    }
    for (std::string_view prefix :
         {"_mm_", "_mm256_", "_mm512_", "vld1q_", "vst1q_", "vdupq_",
          "vceqq_", "vcgtq_", "vcgeq_", "vcleq_", "vgetq_", "vandq_",
          "vorrq_"}) {
      size_t pos = 0;
      while ((pos = code_.find(prefix, pos)) != std::string_view::npos) {
        bool left_ok = pos == 0 || !IdentChar(code_[pos - 1]);
        if (left_ok) {
          Report("raw-intrinsics", pos,
                 "raw SIMD intrinsic outside engine/simd.*; add the kernel "
                 "to the dispatch table in engine/simd.cc instead, or waive "
                 "with // lint: raw-intrinsics-ok(<reason>)");
        }
        pos += prefix.size();
      }
    }
  }

  // --- hygiene + concurrency rules for headers -----------------------------

  void CheckHeaderGuard() {
    // First two non-blank scrubbed lines must form a guard (comment-only
    // license banners scrub to blank lines and are skipped).
    std::vector<std::pair<int, std::string>> head;
    std::istringstream in{std::string(code_)};
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw) && head.size() < 2) {
      ++line_no;
      size_t b = raw.find_first_not_of(" \t\r");
      if (b == std::string::npos) continue;
      size_t e = raw.find_last_not_of(" \t\r");
      head.emplace_back(line_no, raw.substr(b, e - b + 1));
    }
    auto fail = [&](int line) {
      ReportLine("header-guard", line,
                 "header must start with #pragma once or a matching "
                 "#ifndef/#define include guard");
    };
    if (head.empty()) return;  // empty header: nothing to protect
    if (head[0].second.rfind("#pragma once", 0) == 0) return;
    if (head[0].second.rfind("#ifndef ", 0) != 0 || head.size() < 2 ||
        head[1].second.rfind("#define ", 0) != 0) {
      fail(head[0].first);
      return;
    }
    std::string ifndef_macro = head[0].second.substr(8);
    std::string define_macro = head[1].second.substr(8);
    auto trim = [](std::string& s) {
      size_t b = s.find_first_not_of(" \t");
      size_t e = s.find_last_not_of(" \t");
      s = b == std::string::npos ? "" : s.substr(b, e - b + 1);
    };
    trim(ifndef_macro);
    trim(define_macro);
    if (ifndef_macro.empty() || ifndef_macro != define_macro) {
      fail(head[1].first);
    }
  }

  void CheckUsingNamespace() {
    for (size_t pos : FindTokens(code_, "using")) {
      size_t i = SkipSpace(code_, pos + 5);
      if (code_.compare(i, 9, "namespace") == 0 &&
          (i + 9 >= code_.size() || !IdentChar(code_[i + 9]))) {
        Report("using-namespace-header", pos,
               "using namespace in a header leaks into every includer; "
               "qualify names instead");
      }
    }
  }

  // Tracks brace scopes well enough to know whether we are at pure
  // namespace scope (every enclosing `{` belongs to a namespace or extern
  // block). Preprocessor lines are skipped wholesale.
  void CheckHeaderMutableState() {
    std::vector<char> scopes;  // 'n' = namespace-ish, 'o' = anything else
    size_t stmt_start = 0;
    size_t i = 0;
    bool at_line_start = true;
    while (i < code_.size()) {
      char c = code_[i];
      if (at_line_start) {
        size_t j = SkipSpace(code_, i);
        if (j < code_.size() && code_[j] == '#') {
          // Skip the directive (with continuations) for scope purposes.
          while (j < code_.size() && code_[j] != '\n') {
            if (code_[j] == '\\' && j + 1 < code_.size() &&
                code_[j + 1] == '\n') {
              ++j;
            }
            ++j;
          }
          i = j;
          stmt_start = i;
          continue;
        }
      }
      at_line_start = c == '\n';
      if (c == '{') {
        std::string_view head = code_.substr(stmt_start, i - stmt_start);
        bool ns = HasToken(head, "namespace") || HasToken(head, "extern");
        scopes.push_back(ns ? 'n' : 'o');
        stmt_start = i + 1;
      } else if (c == '}') {
        if (!scopes.empty()) scopes.pop_back();
        stmt_start = i + 1;
      } else if (c == ';') {
        stmt_start = i + 1;
      } else if (IdentChar(c) && (i == 0 || !IdentChar(code_[i - 1]))) {
        bool ns_pure =
            std::all_of(scopes.begin(), scopes.end(),
                        [](char s) { return s == 'n'; });
        size_t lead = SkipSpace(code_, stmt_start);
        if (ns_pure && lead == i) {
          for (std::string_view kw : {"static", "inline", "constinit"}) {
            if (code_.compare(i, kw.size(), kw) == 0 &&
                (i + kw.size() >= code_.size() ||
                 !IdentChar(code_[i + kw.size()]))) {
              std::string_view stmt = StatementAt(code_, i);
              if (IsMutableVariableDecl(stmt)) {
                Report("header-mutable-state", i,
                       "mutable namespace-scope state in a header; move it "
                       "behind a function in a .cc or make it constexpr");
              }
              break;
            }
          }
        }
      }
      ++i;
    }
  }

  // `stmt` starts at static/inline/constinit. A mutable variable if it is
  // not const/constexpr and the statement reads as a variable declaration
  // (an `=` before any `(`, or neither present).
  static bool IsMutableVariableDecl(std::string_view stmt) {
    if (HasToken(stmt, "const") || HasToken(stmt, "constexpr") ||
        HasToken(stmt, "consteval") || HasToken(stmt, "namespace") ||
        HasToken(stmt, "using") || HasToken(stmt, "typedef")) {
      return false;
    }
    size_t eq = stmt.find('=');
    size_t paren = stmt.find('(');
    size_t brace = stmt.find('{');
    if (eq != std::string_view::npos &&
        (paren == std::string_view::npos || eq < paren)) {
      return true;
    }
    // `static std::atomic<int> x;` / `inline int x{0};`
    if (paren == std::string_view::npos) {
      if (brace != std::string_view::npos) return true;
      // Plain `static T name;` — at least two identifier tokens after the
      // keyword, no parens: a variable without initializer.
      return stmt.find('<') != std::string_view::npos ||
             std::count_if(stmt.begin(), stmt.end(), [](char ch) {
               return ch == ' ';
             }) >= 2;
    }
    return false;
  }

  const FileInput& input_;
  // A view (not a reference to the std::string) so every code_.substr(...)
  // below is itself a view — substr on a std::string would return a
  // temporary whose lifetime ends at the statement.
  std::string_view code_;
  const std::vector<std::string>& comments_;
  LineIndex lines_;
  std::vector<Finding> findings_;
};

}  // namespace

std::vector<Finding> LintFile(const FileInput& input) {
  ScrubResult scrub = Scrub(input.content);
  return LintFileScrubbed(input, scrub);
}

std::vector<Finding> LintFileScrubbed(const FileInput& input,
                                      const ScrubResult& scrub) {
  Linter linter(input, scrub);
  return linter.Run();
}

std::vector<Finding> LintText(std::string_view path, std::string_view content) {
  FileInput input;
  input.path = std::string(path);
  input.content = std::string(content);
  return LintFile(input);
}

std::map<std::string_view, RuleTally> Tally(const std::vector<Finding>& all) {
  std::map<std::string_view, RuleTally> tally;
  for (const Finding& f : all) {
    RuleTally& t = tally[f.rule_id];
    if (f.waived) {
      ++t.waived;
    } else {
      ++t.errors;
    }
  }
  return tally;
}

}  // namespace lqo::lint
