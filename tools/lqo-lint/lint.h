#ifndef LQO_TOOLS_LQO_LINT_LINT_H_
#define LQO_TOOLS_LQO_LINT_LINT_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

// lqo-lint: a from-scratch determinism & concurrency static-analysis pass
// for this repository (no full C++ parse — a comment/string-aware lexer plus
// token-level rules). The rule catalog is table-driven; every rule has an id,
// a severity, a waiver syntax, and an --explain entry. See DESIGN.md
// "Static analysis & correctness gates" for the policy.
//
// Since PR 9 the tool is a two-phase whole-program analyzer:
//   phase 1  scrubs and tokenizes every file in parallel (lqo::ThreadPool),
//            runs the per-file rules, and builds a ProjectIndex — per-class
//            member tables with their // guards: / LQO_GUARDED_BY contracts,
//            unordered-container members and aliases, and the #include
//            graph. Results are folded in sorted path order, so output is
//            bit-identical at any LQO_THREADS.
//   phase 2  runs the cross-TU rule families against the index:
//            lock-discipline, cross-TU unordered-iter, and layering.
namespace lqo::lint {

enum class Severity { kError, kWarning };

// One entry of the table-driven rule catalog.
struct Rule {
  std::string_view id;       // stable id used in waivers and --explain
  std::string_view family;   // "determinism" | "concurrency" | "hygiene"
  Severity severity;
  std::string_view summary;  // one-line description for the summary table
  std::string_view waiver;   // the exact comment syntax that waives a finding
  std::string_view explain;  // rationale shown by --explain <id>
};

// The full rule catalog, in reporting order.
const std::vector<Rule>& Rules();

// Catalog lookup; nullptr when no rule has that id.
const Rule* FindRule(std::string_view id);

// One node of the declarative layering DAG over src/ (defined in rules.cc):
// a layer may include itself, plus the listed layers. Directories under
// src/ that do not appear in the table are unconstrained.
struct LayerSpec {
  std::string_view name;
  std::vector<std::string_view> may_include;
};
const std::vector<LayerSpec>& LayerDag();

// Lookup in the DAG; nullptr for unknown layers.
const LayerSpec* FindLayer(std::string_view name);

struct Finding {
  std::string_view rule_id;
  std::string file;
  int line = 0;  // 1-based
  std::string message;
  bool waived = false;  // an in-source waiver comment covers this finding
};

// A single file to lint. `paired_header` carries the contents of the
// matching .h when linting a .cc so member containers declared in the header
// are visible to the unordered-iter rule (empty when there is none;
// AnalyzeFiles auto-pairs from its in-memory file set).
struct FileInput {
  std::string path;  // used for diagnostics and path-based allowlists
  std::string content;
  std::string paired_header;
};

// Lexer output: `code` is the input with comment bodies and string/char
// literal contents blanked out (newlines preserved, so offsets and line
// numbers survive); `line_comments[i]` holds the concatenated comment text
// seen on 1-based line i. Exposed for tests.
struct ScrubResult {
  std::string code;
  std::vector<std::string> line_comments;  // index 0 unused
};
ScrubResult Scrub(std::string_view source);

// Collects names declared (in scrubbed `code`) with an unordered container
// type into `names`, plus alias names introduced by
// `using X = std::unordered_*` into `aliases`. `aliases` may be pre-seeded
// (e.g. with project-wide aliases); declarations through any listed alias
// are collected too. Shared by the per-file rule and the whole-program pass.
void CollectUnorderedNames(std::string_view code,
                           std::vector<std::string>& names,
                           std::vector<std::string>& aliases);

// ---------------------------------------------------------------------------
// Whole-program index (phase 1 output, phase 2 input)
// ---------------------------------------------------------------------------

// A member protected by a named mutex, from a // guards: comment on the
// mutex declaration or an LQO_GUARDED_BY(mutex) attribute on the member.
struct GuardedMember {
  std::string member;
  std::string mutex;
};

// A method declared to run with a mutex already held (LQO_REQUIRES).
struct RequiredLock {
  std::string method;
  std::string mutex;
};

// Per-class member table. `member_code` is the scrubbed class body with
// nested blocks blanked, so phase 2 can re-resolve member types against the
// project-wide alias set.
struct ClassInfo {
  std::string name;
  std::string file;  // file of the (first seen) definition
  int line = 0;
  std::vector<GuardedMember> guarded;
  std::vector<RequiredLock> requires_lock;
  std::vector<std::string> unordered_members;
  // member name -> protocol comment, for every std::atomic member that has
  // one (the atomic-comment rule enforces presence per file).
  std::map<std::string, std::string> atomic_protocols;
  std::string member_code;
};

struct IncludeEdge {
  std::string target;  // the quoted include path, e.g. "engine/executor.h"
  int line = 0;
};

struct ProjectIndex {
  // Class name -> merged info. Same-named classes in different files merge
  // member tables (textual pass; qualification is out of scope).
  std::map<std::string, ClassInfo> classes;
  // File path -> quoted #include targets, in file order.
  std::map<std::string, std::vector<IncludeEdge>> includes;
  // Project-wide `using X = std::unordered_*` alias names, deduped, sorted.
  std::vector<std::string> unordered_aliases;
};

// Runs every per-file rule over one file. Findings covered by a waiver
// comment are returned with `waived = true` rather than dropped, so callers
// can report waiver counts.
std::vector<Finding> LintFile(const FileInput& input);

// Per-file rules over an already-scrubbed file (phase 1 scrubs once and
// shares the result between the rule pass and the indexer).
std::vector<Finding> LintFileScrubbed(const FileInput& input,
                                      const ScrubResult& scrub);

// Convenience overload for tests and single-file use.
std::vector<Finding> LintText(std::string_view path, std::string_view content);

// Two-phase whole-program analysis over an in-memory file set: per-file
// rules + index build (parallel, folded in sorted path order) followed by
// the cross-TU rules. Deterministic: output is identical at any LQO_THREADS.
// `index_out`, when non-null, receives the phase-1 index.
std::vector<Finding> AnalyzeFiles(std::vector<FileInput> files,
                                  ProjectIndex* index_out = nullptr);

// Loads every C++ source file (.h/.hpp/.cc/.cpp) under `root/<dir>` for
// each dir, in sorted path order, with paths relative to `root`.
std::vector<FileInput> LoadTree(const std::string& root,
                                const std::vector<std::string>& dirs);

// LoadTree + AnalyzeFiles: the full whole-program gate over a source tree.
std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& dirs);

// Per-rule {errors, waived} counts for the summary table.
struct RuleTally {
  int errors = 0;
  int waived = 0;
};
std::map<std::string_view, RuleTally> Tally(const std::vector<Finding>& all);

// ---------------------------------------------------------------------------
// Machine-readable emission and the waiver-budget baseline (format.cc)
// ---------------------------------------------------------------------------

// Findings as a JSON object: {"tool", "errors", "waived", "findings": [...],
// "tally": {...}}.
std::string RenderJson(const std::vector<Finding>& findings);

// Findings as a SARIF 2.1.0 log (one run, rule metadata from the catalog;
// waived findings carry an inSource suppression).
std::string RenderSarif(const std::vector<Finding>& findings);

// The checked-in waiver budget: per-rule counts of waived findings.
// The gate fails when the current counts grow past the baseline (new
// waivers need review) OR shrink below it (the baseline is stale and must
// be regenerated), so the budget only moves by explicit regeneration.
std::string RenderBaseline(const std::vector<Finding>& findings);

// Compares current findings against a baseline.json payload. Returns one
// human-readable problem string per deviation; empty means in budget.
std::vector<std::string> CheckBaseline(const std::vector<Finding>& findings,
                                       std::string_view baseline_json);

}  // namespace lqo::lint

#endif  // LQO_TOOLS_LQO_LINT_LINT_H_
