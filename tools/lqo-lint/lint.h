#ifndef LQO_TOOLS_LQO_LINT_LINT_H_
#define LQO_TOOLS_LQO_LINT_LINT_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

// lqo-lint: a from-scratch determinism & concurrency static-analysis pass
// for this repository (no full C++ parse — a comment/string-aware lexer plus
// token-level rules). The rule catalog is table-driven; every rule has an id,
// a severity, a waiver syntax, and an --explain entry. See DESIGN.md
// "Static analysis & correctness gates" for the policy.
namespace lqo::lint {

enum class Severity { kError, kWarning };

// One entry of the table-driven rule catalog.
struct Rule {
  std::string_view id;       // stable id used in waivers and --explain
  std::string_view family;   // "determinism" | "concurrency" | "hygiene"
  Severity severity;
  std::string_view summary;  // one-line description for the summary table
  std::string_view waiver;   // the exact comment syntax that waives a finding
  std::string_view explain;  // rationale shown by --explain <id>
};

// The full rule catalog, in reporting order.
const std::vector<Rule>& Rules();

// Catalog lookup; nullptr when no rule has that id.
const Rule* FindRule(std::string_view id);

struct Finding {
  std::string_view rule_id;
  std::string file;
  int line = 0;  // 1-based
  std::string message;
  bool waived = false;  // an in-source waiver comment covers this finding
};

// A single file to lint. `paired_header` carries the contents of the
// matching .h when linting a .cc so member containers declared in the header
// are visible to the unordered-iter rule (empty when there is none).
struct FileInput {
  std::string path;  // used for diagnostics and path-based allowlists
  std::string content;
  std::string paired_header;
};

// Lexer output: `code` is the input with comment bodies and string/char
// literal contents blanked out (newlines preserved, so offsets and line
// numbers survive); `line_comments[i]` holds the concatenated comment text
// seen on 1-based line i. Exposed for tests.
struct ScrubResult {
  std::string code;
  std::vector<std::string> line_comments;  // index 0 unused
};
ScrubResult Scrub(std::string_view source);

// Runs every rule over one file. Findings covered by a waiver comment are
// returned with `waived = true` rather than dropped, so callers can report
// waiver counts.
std::vector<Finding> LintFile(const FileInput& input);

// Convenience overload for tests and single-file use.
std::vector<Finding> LintText(std::string_view path, std::string_view content);

// Recursively lints every C++ source file (.h/.hpp/.cc/.cpp) under
// `root/<dir>` for each dir, in sorted path order. Paths in findings are
// relative to `root`.
std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& dirs);

// Per-rule {errors, waived} counts for the summary table.
struct RuleTally {
  int errors = 0;
  int waived = 0;
};
std::map<std::string_view, RuleTally> Tally(const std::vector<Finding>& all);

}  // namespace lqo::lint

#endif  // LQO_TOOLS_LQO_LINT_LINT_H_
