file(REMOVE_RECURSE
  "CMakeFiles/pilotscope_demo.dir/pilotscope_demo.cpp.o"
  "CMakeFiles/pilotscope_demo.dir/pilotscope_demo.cpp.o.d"
  "pilotscope_demo"
  "pilotscope_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotscope_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
