# Empty dependencies file for pilotscope_demo.
# This may be replaced when dependencies are built.
