# Empty dependencies file for estimator_tour.
# This may be replaced when dependencies are built.
