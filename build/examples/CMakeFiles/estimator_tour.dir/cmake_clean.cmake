file(REMOVE_RECURSE
  "CMakeFiles/estimator_tour.dir/estimator_tour.cpp.o"
  "CMakeFiles/estimator_tour.dir/estimator_tour.cpp.o.d"
  "estimator_tour"
  "estimator_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
