# Empty dependencies file for adaptive_execution.
# This may be replaced when dependencies are built.
