file(REMOVE_RECURSE
  "CMakeFiles/adaptive_execution.dir/adaptive_execution.cpp.o"
  "CMakeFiles/adaptive_execution.dir/adaptive_execution.cpp.o.d"
  "adaptive_execution"
  "adaptive_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
