# Empty dependencies file for learned_optimizer_loop.
# This may be replaced when dependencies are built.
