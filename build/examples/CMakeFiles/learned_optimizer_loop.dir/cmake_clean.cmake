file(REMOVE_RECURSE
  "CMakeFiles/learned_optimizer_loop.dir/learned_optimizer_loop.cpp.o"
  "CMakeFiles/learned_optimizer_loop.dir/learned_optimizer_loop.cpp.o.d"
  "learned_optimizer_loop"
  "learned_optimizer_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_optimizer_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
