file(REMOVE_RECURSE
  "liblqo_common.a"
)
