file(REMOVE_RECURSE
  "CMakeFiles/lqo_common.dir/rng.cc.o"
  "CMakeFiles/lqo_common.dir/rng.cc.o.d"
  "CMakeFiles/lqo_common.dir/stats_util.cc.o"
  "CMakeFiles/lqo_common.dir/stats_util.cc.o.d"
  "CMakeFiles/lqo_common.dir/str_util.cc.o"
  "CMakeFiles/lqo_common.dir/str_util.cc.o.d"
  "CMakeFiles/lqo_common.dir/table_printer.cc.o"
  "CMakeFiles/lqo_common.dir/table_printer.cc.o.d"
  "liblqo_common.a"
  "liblqo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
