# Empty dependencies file for lqo_common.
# This may be replaced when dependencies are built.
