# Empty dependencies file for lqo_costmodel.
# This may be replaced when dependencies are built.
