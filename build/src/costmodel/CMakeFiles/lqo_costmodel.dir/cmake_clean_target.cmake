file(REMOVE_RECURSE
  "liblqo_costmodel.a"
)
