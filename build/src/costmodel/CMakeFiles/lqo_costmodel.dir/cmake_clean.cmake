file(REMOVE_RECURSE
  "CMakeFiles/lqo_costmodel.dir/concurrent.cc.o"
  "CMakeFiles/lqo_costmodel.dir/concurrent.cc.o.d"
  "CMakeFiles/lqo_costmodel.dir/learned_cost_model.cc.o"
  "CMakeFiles/lqo_costmodel.dir/learned_cost_model.cc.o.d"
  "CMakeFiles/lqo_costmodel.dir/plan_featurizer.cc.o"
  "CMakeFiles/lqo_costmodel.dir/plan_featurizer.cc.o.d"
  "CMakeFiles/lqo_costmodel.dir/sample_collection.cc.o"
  "CMakeFiles/lqo_costmodel.dir/sample_collection.cc.o.d"
  "liblqo_costmodel.a"
  "liblqo_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
