# Empty dependencies file for lqo_optimizer.
# This may be replaced when dependencies are built.
