file(REMOVE_RECURSE
  "CMakeFiles/lqo_optimizer.dir/baseline_estimator.cc.o"
  "CMakeFiles/lqo_optimizer.dir/baseline_estimator.cc.o.d"
  "CMakeFiles/lqo_optimizer.dir/cardinality_interface.cc.o"
  "CMakeFiles/lqo_optimizer.dir/cardinality_interface.cc.o.d"
  "CMakeFiles/lqo_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/lqo_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/lqo_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/lqo_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/lqo_optimizer.dir/reoptimizer.cc.o"
  "CMakeFiles/lqo_optimizer.dir/reoptimizer.cc.o.d"
  "CMakeFiles/lqo_optimizer.dir/table_stats.cc.o"
  "CMakeFiles/lqo_optimizer.dir/table_stats.cc.o.d"
  "liblqo_optimizer.a"
  "liblqo_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
