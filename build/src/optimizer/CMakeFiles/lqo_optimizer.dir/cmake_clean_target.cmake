file(REMOVE_RECURSE
  "liblqo_optimizer.a"
)
