
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/baseline_estimator.cc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/baseline_estimator.cc.o" "gcc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/baseline_estimator.cc.o.d"
  "/root/repo/src/optimizer/cardinality_interface.cc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/cardinality_interface.cc.o" "gcc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/cardinality_interface.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/cost_model.cc.o" "gcc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/reoptimizer.cc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/reoptimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/reoptimizer.cc.o.d"
  "/root/repo/src/optimizer/table_stats.cc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/table_stats.cc.o" "gcc" "src/optimizer/CMakeFiles/lqo_optimizer.dir/table_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/lqo_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lqo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/lqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
