file(REMOVE_RECURSE
  "CMakeFiles/lqo_benchlib.dir/e2e_harness.cc.o"
  "CMakeFiles/lqo_benchlib.dir/e2e_harness.cc.o.d"
  "CMakeFiles/lqo_benchlib.dir/lab.cc.o"
  "CMakeFiles/lqo_benchlib.dir/lab.cc.o.d"
  "liblqo_benchlib.a"
  "liblqo_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
