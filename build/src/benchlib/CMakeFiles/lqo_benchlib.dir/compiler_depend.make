# Empty compiler generated dependencies file for lqo_benchlib.
# This may be replaced when dependencies are built.
