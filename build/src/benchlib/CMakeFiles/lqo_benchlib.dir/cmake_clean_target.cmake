file(REMOVE_RECURSE
  "liblqo_benchlib.a"
)
