# CMake generated Testfile for 
# Source directory: /root/repo/src/benchlib
# Build directory: /root/repo/build/src/benchlib
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
