# Empty dependencies file for lqo_ml.
# This may be replaced when dependencies are built.
