file(REMOVE_RECURSE
  "liblqo_ml.a"
)
