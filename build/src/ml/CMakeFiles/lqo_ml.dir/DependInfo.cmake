
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/chow_liu.cc" "src/ml/CMakeFiles/lqo_ml.dir/chow_liu.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/chow_liu.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/lqo_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/forest.cc" "src/ml/CMakeFiles/lqo_ml.dir/forest.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/forest.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/lqo_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/gmm.cc" "src/ml/CMakeFiles/lqo_ml.dir/gmm.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/gmm.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/lqo_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/lqo_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/lqo_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/lqo_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/tree.cc" "src/ml/CMakeFiles/lqo_ml.dir/tree.cc.o" "gcc" "src/ml/CMakeFiles/lqo_ml.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
