file(REMOVE_RECURSE
  "CMakeFiles/lqo_ml.dir/chow_liu.cc.o"
  "CMakeFiles/lqo_ml.dir/chow_liu.cc.o.d"
  "CMakeFiles/lqo_ml.dir/dataset.cc.o"
  "CMakeFiles/lqo_ml.dir/dataset.cc.o.d"
  "CMakeFiles/lqo_ml.dir/forest.cc.o"
  "CMakeFiles/lqo_ml.dir/forest.cc.o.d"
  "CMakeFiles/lqo_ml.dir/gbdt.cc.o"
  "CMakeFiles/lqo_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/lqo_ml.dir/gmm.cc.o"
  "CMakeFiles/lqo_ml.dir/gmm.cc.o.d"
  "CMakeFiles/lqo_ml.dir/kmeans.cc.o"
  "CMakeFiles/lqo_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/lqo_ml.dir/linear.cc.o"
  "CMakeFiles/lqo_ml.dir/linear.cc.o.d"
  "CMakeFiles/lqo_ml.dir/metrics.cc.o"
  "CMakeFiles/lqo_ml.dir/metrics.cc.o.d"
  "CMakeFiles/lqo_ml.dir/mlp.cc.o"
  "CMakeFiles/lqo_ml.dir/mlp.cc.o.d"
  "CMakeFiles/lqo_ml.dir/tree.cc.o"
  "CMakeFiles/lqo_ml.dir/tree.cc.o.d"
  "liblqo_ml.a"
  "liblqo_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
