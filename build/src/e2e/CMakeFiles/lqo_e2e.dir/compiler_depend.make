# Empty compiler generated dependencies file for lqo_e2e.
# This may be replaced when dependencies are built.
