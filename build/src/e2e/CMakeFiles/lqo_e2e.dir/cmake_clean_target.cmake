file(REMOVE_RECURSE
  "liblqo_e2e.a"
)
