file(REMOVE_RECURSE
  "CMakeFiles/lqo_e2e.dir/bao.cc.o"
  "CMakeFiles/lqo_e2e.dir/bao.cc.o.d"
  "CMakeFiles/lqo_e2e.dir/framework.cc.o"
  "CMakeFiles/lqo_e2e.dir/framework.cc.o.d"
  "CMakeFiles/lqo_e2e.dir/hyperqo.cc.o"
  "CMakeFiles/lqo_e2e.dir/hyperqo.cc.o.d"
  "CMakeFiles/lqo_e2e.dir/leon.cc.o"
  "CMakeFiles/lqo_e2e.dir/leon.cc.o.d"
  "CMakeFiles/lqo_e2e.dir/lero.cc.o"
  "CMakeFiles/lqo_e2e.dir/lero.cc.o.d"
  "CMakeFiles/lqo_e2e.dir/neo.cc.o"
  "CMakeFiles/lqo_e2e.dir/neo.cc.o.d"
  "CMakeFiles/lqo_e2e.dir/risk_models.cc.o"
  "CMakeFiles/lqo_e2e.dir/risk_models.cc.o.d"
  "CMakeFiles/lqo_e2e.dir/value_search.cc.o"
  "CMakeFiles/lqo_e2e.dir/value_search.cc.o.d"
  "liblqo_e2e.a"
  "liblqo_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
