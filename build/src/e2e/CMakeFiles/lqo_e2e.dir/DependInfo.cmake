
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/e2e/bao.cc" "src/e2e/CMakeFiles/lqo_e2e.dir/bao.cc.o" "gcc" "src/e2e/CMakeFiles/lqo_e2e.dir/bao.cc.o.d"
  "/root/repo/src/e2e/framework.cc" "src/e2e/CMakeFiles/lqo_e2e.dir/framework.cc.o" "gcc" "src/e2e/CMakeFiles/lqo_e2e.dir/framework.cc.o.d"
  "/root/repo/src/e2e/hyperqo.cc" "src/e2e/CMakeFiles/lqo_e2e.dir/hyperqo.cc.o" "gcc" "src/e2e/CMakeFiles/lqo_e2e.dir/hyperqo.cc.o.d"
  "/root/repo/src/e2e/leon.cc" "src/e2e/CMakeFiles/lqo_e2e.dir/leon.cc.o" "gcc" "src/e2e/CMakeFiles/lqo_e2e.dir/leon.cc.o.d"
  "/root/repo/src/e2e/lero.cc" "src/e2e/CMakeFiles/lqo_e2e.dir/lero.cc.o" "gcc" "src/e2e/CMakeFiles/lqo_e2e.dir/lero.cc.o.d"
  "/root/repo/src/e2e/neo.cc" "src/e2e/CMakeFiles/lqo_e2e.dir/neo.cc.o" "gcc" "src/e2e/CMakeFiles/lqo_e2e.dir/neo.cc.o.d"
  "/root/repo/src/e2e/risk_models.cc" "src/e2e/CMakeFiles/lqo_e2e.dir/risk_models.cc.o" "gcc" "src/e2e/CMakeFiles/lqo_e2e.dir/risk_models.cc.o.d"
  "/root/repo/src/e2e/value_search.cc" "src/e2e/CMakeFiles/lqo_e2e.dir/value_search.cc.o" "gcc" "src/e2e/CMakeFiles/lqo_e2e.dir/value_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/costmodel/CMakeFiles/lqo_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/lqo_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/lqo_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lqo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/lqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
