# CMake generated Testfile for 
# Source directory: /root/repo/src/e2e
# Build directory: /root/repo/build/src/e2e
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
