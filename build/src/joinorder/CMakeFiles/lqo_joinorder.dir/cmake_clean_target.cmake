file(REMOVE_RECURSE
  "liblqo_joinorder.a"
)
