# Empty dependencies file for lqo_joinorder.
# This may be replaced when dependencies are built.
