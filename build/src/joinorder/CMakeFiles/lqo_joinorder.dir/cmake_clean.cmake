file(REMOVE_RECURSE
  "CMakeFiles/lqo_joinorder.dir/join_env.cc.o"
  "CMakeFiles/lqo_joinorder.dir/join_env.cc.o.d"
  "CMakeFiles/lqo_joinorder.dir/mcts.cc.o"
  "CMakeFiles/lqo_joinorder.dir/mcts.cc.o.d"
  "CMakeFiles/lqo_joinorder.dir/online_skinner.cc.o"
  "CMakeFiles/lqo_joinorder.dir/online_skinner.cc.o.d"
  "CMakeFiles/lqo_joinorder.dir/qlearning.cc.o"
  "CMakeFiles/lqo_joinorder.dir/qlearning.cc.o.d"
  "liblqo_joinorder.a"
  "liblqo_joinorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_joinorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
