
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/joinorder/join_env.cc" "src/joinorder/CMakeFiles/lqo_joinorder.dir/join_env.cc.o" "gcc" "src/joinorder/CMakeFiles/lqo_joinorder.dir/join_env.cc.o.d"
  "/root/repo/src/joinorder/mcts.cc" "src/joinorder/CMakeFiles/lqo_joinorder.dir/mcts.cc.o" "gcc" "src/joinorder/CMakeFiles/lqo_joinorder.dir/mcts.cc.o.d"
  "/root/repo/src/joinorder/online_skinner.cc" "src/joinorder/CMakeFiles/lqo_joinorder.dir/online_skinner.cc.o" "gcc" "src/joinorder/CMakeFiles/lqo_joinorder.dir/online_skinner.cc.o.d"
  "/root/repo/src/joinorder/qlearning.cc" "src/joinorder/CMakeFiles/lqo_joinorder.dir/qlearning.cc.o" "gcc" "src/joinorder/CMakeFiles/lqo_joinorder.dir/qlearning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/lqo_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/lqo_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lqo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/lqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
