file(REMOVE_RECURSE
  "liblqo_query.a"
)
