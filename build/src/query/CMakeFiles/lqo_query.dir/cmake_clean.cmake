file(REMOVE_RECURSE
  "CMakeFiles/lqo_query.dir/predicate.cc.o"
  "CMakeFiles/lqo_query.dir/predicate.cc.o.d"
  "CMakeFiles/lqo_query.dir/query.cc.o"
  "CMakeFiles/lqo_query.dir/query.cc.o.d"
  "CMakeFiles/lqo_query.dir/sql_parser.cc.o"
  "CMakeFiles/lqo_query.dir/sql_parser.cc.o.d"
  "CMakeFiles/lqo_query.dir/workload.cc.o"
  "CMakeFiles/lqo_query.dir/workload.cc.o.d"
  "liblqo_query.a"
  "liblqo_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
