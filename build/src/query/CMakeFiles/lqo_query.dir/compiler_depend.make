# Empty compiler generated dependencies file for lqo_query.
# This may be replaced when dependencies are built.
