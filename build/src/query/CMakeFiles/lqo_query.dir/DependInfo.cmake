
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/predicate.cc" "src/query/CMakeFiles/lqo_query.dir/predicate.cc.o" "gcc" "src/query/CMakeFiles/lqo_query.dir/predicate.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/lqo_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/lqo_query.dir/query.cc.o.d"
  "/root/repo/src/query/sql_parser.cc" "src/query/CMakeFiles/lqo_query.dir/sql_parser.cc.o" "gcc" "src/query/CMakeFiles/lqo_query.dir/sql_parser.cc.o.d"
  "/root/repo/src/query/workload.cc" "src/query/CMakeFiles/lqo_query.dir/workload.cc.o" "gcc" "src/query/CMakeFiles/lqo_query.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/lqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
