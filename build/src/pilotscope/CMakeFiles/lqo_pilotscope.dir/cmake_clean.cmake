file(REMOVE_RECURSE
  "CMakeFiles/lqo_pilotscope.dir/console.cc.o"
  "CMakeFiles/lqo_pilotscope.dir/console.cc.o.d"
  "CMakeFiles/lqo_pilotscope.dir/drivers.cc.o"
  "CMakeFiles/lqo_pilotscope.dir/drivers.cc.o.d"
  "CMakeFiles/lqo_pilotscope.dir/interactor.cc.o"
  "CMakeFiles/lqo_pilotscope.dir/interactor.cc.o.d"
  "liblqo_pilotscope.a"
  "liblqo_pilotscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_pilotscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
