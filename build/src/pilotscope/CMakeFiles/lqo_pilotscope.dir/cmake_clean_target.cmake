file(REMOVE_RECURSE
  "liblqo_pilotscope.a"
)
