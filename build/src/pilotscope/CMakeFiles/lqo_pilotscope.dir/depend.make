# Empty dependencies file for lqo_pilotscope.
# This may be replaced when dependencies are built.
