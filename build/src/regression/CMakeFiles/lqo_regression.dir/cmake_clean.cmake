file(REMOVE_RECURSE
  "CMakeFiles/lqo_regression.dir/eraser.cc.o"
  "CMakeFiles/lqo_regression.dir/eraser.cc.o.d"
  "liblqo_regression.a"
  "liblqo_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
