# Empty compiler generated dependencies file for lqo_regression.
# This may be replaced when dependencies are built.
