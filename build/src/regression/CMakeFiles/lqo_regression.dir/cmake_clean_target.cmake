file(REMOVE_RECURSE
  "liblqo_regression.a"
)
