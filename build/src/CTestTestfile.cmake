# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("query")
subdirs("engine")
subdirs("ml")
subdirs("optimizer")
subdirs("cardinality")
subdirs("costmodel")
subdirs("joinorder")
subdirs("e2e")
subdirs("regression")
subdirs("benchlib")
subdirs("pilotscope")
