
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cardinality/advisor.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/advisor.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/advisor.cc.o.d"
  "/root/repo/src/cardinality/ar_model.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/ar_model.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/ar_model.cc.o.d"
  "/root/repo/src/cardinality/bayes_net_model.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/bayes_net_model.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/bayes_net_model.cc.o.d"
  "/root/repo/src/cardinality/data_driven.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/data_driven.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/data_driven.cc.o.d"
  "/root/repo/src/cardinality/discretize.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/discretize.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/discretize.cc.o.d"
  "/root/repo/src/cardinality/evaluation.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/evaluation.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/evaluation.cc.o.d"
  "/root/repo/src/cardinality/featurizer.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/featurizer.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/featurizer.cc.o.d"
  "/root/repo/src/cardinality/hybrid.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/hybrid.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/hybrid.cc.o.d"
  "/root/repo/src/cardinality/kde_model.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/kde_model.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/kde_model.cc.o.d"
  "/root/repo/src/cardinality/perror.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/perror.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/perror.cc.o.d"
  "/root/repo/src/cardinality/query_driven.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/query_driven.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/query_driven.cc.o.d"
  "/root/repo/src/cardinality/registry.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/registry.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/registry.cc.o.d"
  "/root/repo/src/cardinality/sample_model.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/sample_model.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/sample_model.cc.o.d"
  "/root/repo/src/cardinality/sketch_model.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/sketch_model.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/sketch_model.cc.o.d"
  "/root/repo/src/cardinality/spn_model.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/spn_model.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/spn_model.cc.o.d"
  "/root/repo/src/cardinality/traditional.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/traditional.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/traditional.cc.o.d"
  "/root/repo/src/cardinality/training_data.cc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/training_data.cc.o" "gcc" "src/cardinality/CMakeFiles/lqo_cardinality.dir/training_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/lqo_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/lqo_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lqo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/lqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
