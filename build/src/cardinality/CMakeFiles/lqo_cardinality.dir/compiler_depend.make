# Empty compiler generated dependencies file for lqo_cardinality.
# This may be replaced when dependencies are built.
