file(REMOVE_RECURSE
  "liblqo_cardinality.a"
)
