file(REMOVE_RECURSE
  "liblqo_storage.a"
)
