
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/lqo_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/lqo_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/storage/CMakeFiles/lqo_storage.dir/csv.cc.o" "gcc" "src/storage/CMakeFiles/lqo_storage.dir/csv.cc.o.d"
  "/root/repo/src/storage/datasets.cc" "src/storage/CMakeFiles/lqo_storage.dir/datasets.cc.o" "gcc" "src/storage/CMakeFiles/lqo_storage.dir/datasets.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/storage/CMakeFiles/lqo_storage.dir/table.cc.o" "gcc" "src/storage/CMakeFiles/lqo_storage.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
