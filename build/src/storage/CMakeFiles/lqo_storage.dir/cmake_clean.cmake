file(REMOVE_RECURSE
  "CMakeFiles/lqo_storage.dir/catalog.cc.o"
  "CMakeFiles/lqo_storage.dir/catalog.cc.o.d"
  "CMakeFiles/lqo_storage.dir/csv.cc.o"
  "CMakeFiles/lqo_storage.dir/csv.cc.o.d"
  "CMakeFiles/lqo_storage.dir/datasets.cc.o"
  "CMakeFiles/lqo_storage.dir/datasets.cc.o.d"
  "CMakeFiles/lqo_storage.dir/table.cc.o"
  "CMakeFiles/lqo_storage.dir/table.cc.o.d"
  "liblqo_storage.a"
  "liblqo_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
