# Empty compiler generated dependencies file for lqo_storage.
# This may be replaced when dependencies are built.
