file(REMOVE_RECURSE
  "CMakeFiles/lqo_engine.dir/executor.cc.o"
  "CMakeFiles/lqo_engine.dir/executor.cc.o.d"
  "CMakeFiles/lqo_engine.dir/explain.cc.o"
  "CMakeFiles/lqo_engine.dir/explain.cc.o.d"
  "CMakeFiles/lqo_engine.dir/plan.cc.o"
  "CMakeFiles/lqo_engine.dir/plan.cc.o.d"
  "CMakeFiles/lqo_engine.dir/true_cardinality.cc.o"
  "CMakeFiles/lqo_engine.dir/true_cardinality.cc.o.d"
  "liblqo_engine.a"
  "liblqo_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lqo_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
