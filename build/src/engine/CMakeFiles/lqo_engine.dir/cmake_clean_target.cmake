file(REMOVE_RECURSE
  "liblqo_engine.a"
)
