# Empty compiler generated dependencies file for lqo_engine.
# This may be replaced when dependencies are built.
