# Empty compiler generated dependencies file for pilotscope_test.
# This may be replaced when dependencies are built.
