file(REMOVE_RECURSE
  "CMakeFiles/pilotscope_test.dir/pilotscope_test.cc.o"
  "CMakeFiles/pilotscope_test.dir/pilotscope_test.cc.o.d"
  "pilotscope_test"
  "pilotscope_test.pdb"
  "pilotscope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilotscope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
