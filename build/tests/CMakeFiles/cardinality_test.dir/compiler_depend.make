# Empty compiler generated dependencies file for cardinality_test.
# This may be replaced when dependencies are built.
