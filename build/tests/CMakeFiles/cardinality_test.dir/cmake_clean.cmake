file(REMOVE_RECURSE
  "CMakeFiles/cardinality_test.dir/cardinality_test.cc.o"
  "CMakeFiles/cardinality_test.dir/cardinality_test.cc.o.d"
  "cardinality_test"
  "cardinality_test.pdb"
  "cardinality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardinality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
