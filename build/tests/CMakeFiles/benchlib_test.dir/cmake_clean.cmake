file(REMOVE_RECURSE
  "CMakeFiles/benchlib_test.dir/benchlib_test.cc.o"
  "CMakeFiles/benchlib_test.dir/benchlib_test.cc.o.d"
  "benchlib_test"
  "benchlib_test.pdb"
  "benchlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
