# Empty compiler generated dependencies file for benchlib_test.
# This may be replaced when dependencies are built.
