file(REMOVE_RECURSE
  "CMakeFiles/joinorder_test.dir/joinorder_test.cc.o"
  "CMakeFiles/joinorder_test.dir/joinorder_test.cc.o.d"
  "joinorder_test"
  "joinorder_test.pdb"
  "joinorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joinorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
