# Empty compiler generated dependencies file for joinorder_test.
# This may be replaced when dependencies are built.
