file(REMOVE_RECURSE
  "CMakeFiles/regression_test.dir/regression_test.cc.o"
  "CMakeFiles/regression_test.dir/regression_test.cc.o.d"
  "regression_test"
  "regression_test.pdb"
  "regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
