# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/cardinality_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/joinorder_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/pilotscope_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/contracts_test[1]_include.cmake")
include("/root/repo/build/tests/benchlib_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
