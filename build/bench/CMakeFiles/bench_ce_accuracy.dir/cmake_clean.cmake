file(REMOVE_RECURSE
  "CMakeFiles/bench_ce_accuracy.dir/bench_ce_accuracy.cc.o"
  "CMakeFiles/bench_ce_accuracy.dir/bench_ce_accuracy.cc.o.d"
  "bench_ce_accuracy"
  "bench_ce_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ce_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
