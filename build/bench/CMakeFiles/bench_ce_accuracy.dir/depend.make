# Empty dependencies file for bench_ce_accuracy.
# This may be replaced when dependencies are built.
