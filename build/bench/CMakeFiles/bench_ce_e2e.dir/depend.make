# Empty dependencies file for bench_ce_e2e.
# This may be replaced when dependencies are built.
