file(REMOVE_RECURSE
  "CMakeFiles/bench_ce_e2e.dir/bench_ce_e2e.cc.o"
  "CMakeFiles/bench_ce_e2e.dir/bench_ce_e2e.cc.o.d"
  "bench_ce_e2e"
  "bench_ce_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ce_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
