file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_cost.dir/bench_concurrent_cost.cc.o"
  "CMakeFiles/bench_concurrent_cost.dir/bench_concurrent_cost.cc.o.d"
  "bench_concurrent_cost"
  "bench_concurrent_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
