# Empty dependencies file for bench_concurrent_cost.
# This may be replaced when dependencies are built.
