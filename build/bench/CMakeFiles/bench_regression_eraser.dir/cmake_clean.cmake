file(REMOVE_RECURSE
  "CMakeFiles/bench_regression_eraser.dir/bench_regression_eraser.cc.o"
  "CMakeFiles/bench_regression_eraser.dir/bench_regression_eraser.cc.o.d"
  "bench_regression_eraser"
  "bench_regression_eraser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regression_eraser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
