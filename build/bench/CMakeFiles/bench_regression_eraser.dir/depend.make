# Empty dependencies file for bench_regression_eraser.
# This may be replaced when dependencies are built.
