# Empty dependencies file for bench_ablation_knobs.
# This may be replaced when dependencies are built.
