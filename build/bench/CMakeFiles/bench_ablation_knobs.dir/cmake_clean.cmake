file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_knobs.dir/bench_ablation_knobs.cc.o"
  "CMakeFiles/bench_ablation_knobs.dir/bench_ablation_knobs.cc.o.d"
  "bench_ablation_knobs"
  "bench_ablation_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
