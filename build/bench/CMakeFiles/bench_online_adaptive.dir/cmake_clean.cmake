file(REMOVE_RECURSE
  "CMakeFiles/bench_online_adaptive.dir/bench_online_adaptive.cc.o"
  "CMakeFiles/bench_online_adaptive.dir/bench_online_adaptive.cc.o.d"
  "bench_online_adaptive"
  "bench_online_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
