# Empty compiler generated dependencies file for bench_online_adaptive.
# This may be replaced when dependencies are built.
