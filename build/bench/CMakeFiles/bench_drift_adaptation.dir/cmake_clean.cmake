file(REMOVE_RECURSE
  "CMakeFiles/bench_drift_adaptation.dir/bench_drift_adaptation.cc.o"
  "CMakeFiles/bench_drift_adaptation.dir/bench_drift_adaptation.cc.o.d"
  "bench_drift_adaptation"
  "bench_drift_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_drift_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
