# Empty dependencies file for bench_drift_adaptation.
# This may be replaced when dependencies are built.
