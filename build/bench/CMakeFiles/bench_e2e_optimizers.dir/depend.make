# Empty dependencies file for bench_e2e_optimizers.
# This may be replaced when dependencies are built.
