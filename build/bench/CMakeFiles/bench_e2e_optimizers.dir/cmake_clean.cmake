file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_optimizers.dir/bench_e2e_optimizers.cc.o"
  "CMakeFiles/bench_e2e_optimizers.dir/bench_e2e_optimizers.cc.o.d"
  "bench_e2e_optimizers"
  "bench_e2e_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
