file(REMOVE_RECURSE
  "CMakeFiles/bench_pilotscope.dir/bench_pilotscope.cc.o"
  "CMakeFiles/bench_pilotscope.dir/bench_pilotscope.cc.o.d"
  "bench_pilotscope"
  "bench_pilotscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pilotscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
