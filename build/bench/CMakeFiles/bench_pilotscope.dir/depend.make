# Empty dependencies file for bench_pilotscope.
# This may be replaced when dependencies are built.
