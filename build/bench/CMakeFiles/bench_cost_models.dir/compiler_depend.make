# Empty compiler generated dependencies file for bench_cost_models.
# This may be replaced when dependencies are built.
