
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_cost_models.cc" "bench/CMakeFiles/bench_cost_models.dir/bench_cost_models.cc.o" "gcc" "bench/CMakeFiles/bench_cost_models.dir/bench_cost_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/lqo_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/pilotscope/CMakeFiles/lqo_pilotscope.dir/DependInfo.cmake"
  "/root/repo/build/src/regression/CMakeFiles/lqo_regression.dir/DependInfo.cmake"
  "/root/repo/build/src/joinorder/CMakeFiles/lqo_joinorder.dir/DependInfo.cmake"
  "/root/repo/build/src/e2e/CMakeFiles/lqo_e2e.dir/DependInfo.cmake"
  "/root/repo/build/src/cardinality/CMakeFiles/lqo_cardinality.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/lqo_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/lqo_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lqo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/lqo_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/lqo_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lqo_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lqo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
