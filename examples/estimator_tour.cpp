// Estimator tour: trains the full Table-1 suite of cardinality estimators
// on one schema and prints (a) a leaderboard over a test workload and
// (b) a per-method breakdown for one concrete query, so you can see *why*
// each family succeeds or fails.
//
//   $ ./estimator_tour [dataset]        (default: stats_lite)

#include <cstdio>
#include <string>

#include "benchlib/lab.h"
#include "cardinality/evaluation.h"
#include "cardinality/registry.h"
#include "common/str_util.h"
#include "common/table_printer.h"

using namespace lqo;  // Example code; library code never does this.

int main(int argc, char** argv) {
  std::string dataset = argc > 1 ? argv[1] : "stats_lite";
  std::unique_ptr<Lab> lab = MakeLab(dataset, 0.1);
  std::printf("Dataset %s: %zu rows total\n\n", dataset.c_str(),
              lab->catalog.TotalRows());

  WorkloadOptions wopts;
  wopts.num_queries = 60;
  wopts.min_tables = 1;
  wopts.max_tables = 4;
  wopts.seed = 7;
  Workload train = GenerateWorkload(lab->catalog, wopts);
  wopts.seed = 8;
  wopts.num_queries = 30;
  Workload test = GenerateWorkload(lab->catalog, wopts);

  CeTrainingData training =
      BuildCeTrainingData(lab->catalog, lab->stats, train, lab->truth.get());
  CeTrainingData evaluation =
      BuildCeTrainingData(lab->catalog, lab->stats, test, lab->truth.get());

  std::printf("Training %zu estimators on %zu labeled sub-queries...\n",
              static_cast<size_t>(13), training.labeled.size());
  std::vector<RegisteredEstimator> suite =
      MakeEstimatorSuite(lab->catalog, lab->stats, training);

  // (a) Leaderboard.
  TablePrinter leaderboard(
      {"Method", "Category", "geo-mean q-err", "p90", "max"});
  for (RegisteredEstimator& entry : suite) {
    QErrorSummary summary =
        EvaluateEstimator(entry.estimator.get(), evaluation.labeled);
    leaderboard.AddRow({entry.estimator->Name(),
                        CeCategoryName(entry.category),
                        FormatDouble(summary.geometric_mean, 3),
                        FormatDouble(summary.p90, 3),
                        FormatDouble(summary.max, 3)});
  }
  std::printf("%s\n", leaderboard.ToString("Leaderboard (test workload)")
                          .c_str());

  // (b) One concrete query, dissected.
  const LabeledSubquery* showcase = nullptr;
  for (const LabeledSubquery& labeled : evaluation.labeled) {
    if (PopCount(labeled.tables) >= 3) {
      showcase = &labeled;
      break;
    }
  }
  if (showcase != nullptr) {
    std::printf("Showcase query (true cardinality %.0f):\n  %s\n\n",
                showcase->cardinality, showcase->query->ToString().c_str());
    TablePrinter breakdown({"Method", "estimate", "q-error"});
    for (RegisteredEstimator& entry : suite) {
      double estimate =
          entry.estimator->EstimateSubquery(showcase->AsSubquery());
      breakdown.AddRow({entry.estimator->Name(), FormatDouble(estimate, 5),
                        FormatDouble(QError(estimate, showcase->cardinality),
                                     3)});
    }
    std::printf("%s", breakdown.ToString().c_str());
  }
  return 0;
}
