// Quickstart: build a synthetic database, run SQL on the native optimizer,
// then swap a learned cardinality estimator into the same optimizer and
// watch the plan change.
//
//   $ ./quickstart

#include <cstdio>

#include "benchlib/lab.h"
#include "cardinality/data_driven.h"
#include "query/sql_parser.h"

using namespace lqo;  // Example code; library code never does this.

int main() {
  // 1. A database: the IMDB-like snowflake with skew and correlations.
  std::unique_ptr<Lab> lab = MakeLab("imdb_lite", 0.1);
  std::printf("Loaded imdb_lite: %zu tables, %zu total rows\n",
              lab->catalog.table_names().size(), lab->catalog.TotalRows());
  for (const std::string& name : lab->catalog.table_names()) {
    std::printf("  %s\n", (*lab->catalog.GetTable(name))->SchemaString().c_str());
  }

  // 2. Parse and plan a query with the native optimizer.
  const std::string sql =
      "SELECT COUNT(*) FROM title t, movie_keyword mk, cast_info ci "
      "WHERE t.id = mk.movie_id AND t.id = ci.movie_id "
      "AND t.production_year BETWEEN 2000 AND 2015 "
      "AND t.votes_bucket <= 5";
  auto query = ParseSql(lab->catalog, sql);
  LQO_CHECK(query.ok()) << query.status().ToString();

  CardinalityProvider native_cards(lab->estimator.get());
  PlannerResult native = lab->optimizer->Optimize(*query, &native_cards);
  std::printf("\nNative plan (histogram estimates):\n%s",
              native.plan.ToString().c_str());

  auto native_exec = lab->executor->Execute(native.plan);
  LQO_CHECK(native_exec.ok());
  std::printf("-> COUNT(*) = %llu, simulated latency = %.0f time units\n",
              static_cast<unsigned long long>(native_exec->row_count),
              native_exec->time_units);

  // 3. Swap in a learned (data-driven) estimator: a FactorJoin-style model
  //    that captures the join-key skew the histograms miss.
  DataDrivenEstimator learned("factorjoin", &lab->catalog, &lab->stats,
                              JoinCombineMode::kKeyBuckets);
  learned.SetUniformModelKind(TableModelKind::kSample);
  learned.Build();

  CardinalityProvider learned_cards(&learned);
  PlannerResult steered = lab->optimizer->Optimize(*query, &learned_cards);
  std::printf("\nPlan under learned cardinalities (%s):\n%s",
              learned.Name().c_str(), steered.plan.ToString().c_str());
  auto steered_exec = lab->executor->Execute(steered.plan);
  LQO_CHECK(steered_exec.ok());
  std::printf("-> COUNT(*) = %llu, simulated latency = %.0f time units\n",
              static_cast<unsigned long long>(steered_exec->row_count),
              steered_exec->time_units);

  // 4. Ground truth for reference.
  double truth = static_cast<double>(lab->truth->Cardinality(*query));
  std::printf("\nTrue cardinality: %.0f;  histogram estimate: %.0f;  "
              "learned estimate: %.0f\n",
              truth,
              lab->estimator->EstimateSubquery(
                  Subquery{&*query, query->AllTables()}),
              learned.EstimateSubquery(Subquery{&*query, query->AllTables()}));
  return 0;
}
