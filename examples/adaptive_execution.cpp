// Adaptive execution: the two intra-query techniques of the survey's
// Section 2.1.3 (online learning) and 2.1.1 (query re-optimization, LPCE):
//  1. the online UCB executor switches among candidate plans mid-query
//     with no estimates at all;
//  2. the progressive re-optimizer observes intermediate cardinalities and
//     re-plans when the estimates turn out badly wrong.
//
//   $ ./adaptive_execution

#include <cstdio>
#include <set>

#include "benchlib/lab.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "joinorder/online_skinner.h"
#include "optimizer/reoptimizer.h"
#include "query/workload.h"

using namespace lqo;  // Example code; library code never does this.

namespace {

/// A cardinality estimator with a catastrophic blind spot: it scrambles
/// every multi-table estimate by 300x, the situation adaptive execution
/// exists to survive.
class ScrambledEstimator : public CardinalityEstimatorInterface {
 public:
  explicit ScrambledEstimator(CardinalityEstimatorInterface* base)
      : base_(base) {}
  double EstimateSubquery(const Subquery& subquery) override {
    double estimate = base_->EstimateSubquery(subquery);
    if (PopCount(subquery.tables) <= 1) return estimate;
    size_t h = std::hash<std::string>{}(subquery.Key());
    return h % 2 == 0 ? estimate * 300.0 : std::max(1.0, estimate / 300.0);
  }
  std::string Name() const override { return "scrambled"; }

 private:
  CardinalityEstimatorInterface* base_;
};

}  // namespace

int main() {
  std::unique_ptr<Lab> lab = MakeLab("stats_lite", 0.1);
  WorkloadOptions wopts;
  wopts.num_queries = 15;
  wopts.min_tables = 3;
  wopts.max_tables = 5;
  wopts.seed = 5;
  Workload workload = GenerateWorkload(lab->catalog, wopts);

  ScrambledEstimator scrambled(lab->estimator.get());
  OnlineSkinnerExecutor online(lab->executor.get());
  ProgressiveReoptimizer reoptimizer(lab->optimizer.get(),
                                     lab->executor.get());

  double static_total = 0, reopt_total = 0, online_total = 0, best_total = 0;
  int replans = 0, switches = 0;
  for (const Query& q : workload.queries) {
    // Static execution under the scrambled estimates.
    CardinalityProvider bad_cards(&scrambled);
    auto static_exec = lab->executor->Execute(
        lab->optimizer->Optimize(q, &bad_cards).plan);
    LQO_CHECK(static_exec.ok());
    static_total += static_exec->time_units;

    // 1. Progressive re-optimization repairs the estimates mid-query.
    CardinalityProvider reopt_cards(&scrambled);
    ReoptimizationResult reopt = reoptimizer.Execute(q, &reopt_cards);
    reopt_total += reopt.time_units;
    replans += reopt.replans;

    // 2. Online UCB switching over hint-variant candidates needs no
    //    estimates at all.
    std::vector<PhysicalPlan> candidates;
    std::set<std::string> seen;
    for (int mask : {7, 1, 2, 4}) {
      HintSet hints;
      hints.enable_hash_join = (mask & 1) != 0;
      hints.enable_nested_loop = (mask & 2) != 0;
      hints.enable_merge_join = (mask & 4) != 0;
      PhysicalPlan plan = lab->optimizer->Optimize(q, &bad_cards, hints).plan;
      if (seen.insert(plan.Signature()).second) {
        candidates.push_back(std::move(plan));
      }
    }
    OnlineSkinnerResult online_result = online.Run(candidates);
    online_total += online_result.total_time;
    best_total += online_result.best_plan_time;
    switches += online_result.switches;
  }

  TablePrinter table({"Execution strategy", "total time", "vs static"});
  table.AddRow({"static plan (scrambled estimates)",
                FormatDouble(static_total, 6), "1"});
  table.AddRow({"progressive re-optimization (LPCE [59])",
                FormatDouble(reopt_total, 6),
                FormatDouble(reopt_total / static_total, 4)});
  table.AddRow({"online UCB switching (SkinnerDB [56])",
                FormatDouble(online_total, 6),
                FormatDouble(online_total / static_total, 4)});
  table.AddRow({"best candidate (oracle bound)", FormatDouble(best_total, 6),
                FormatDouble(best_total / static_total, 4)});
  std::printf("%s", table.ToString(
                        "Surviving catastrophic estimates with adaptivity")
                        .c_str());
  std::printf("\nre-plans triggered: %d    plan switches: %d\n", replans,
              switches);
  return 0;
}
