// Learned-optimizer loop: the Section 2.2 life cycle end to end — train a
// Bao-style and a Lero-style optimizer on a workload, evaluate against the
// native optimizer, then deploy the Eraser plugin on top and compare
// regression behavior.
//
//   $ ./learned_optimizer_loop

#include <cstdio>

#include "benchlib/e2e_harness.h"
#include "benchlib/lab.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "e2e/bao.h"
#include "e2e/lero.h"
#include "regression/eraser.h"

using namespace lqo;  // Example code; library code never does this.

namespace {

void Report(const E2eEvalResult& result, TablePrinter* table) {
  table->AddRow({result.name, FormatDouble(result.Speedup(), 4),
                 std::to_string(result.wins), std::to_string(result.losses),
                 FormatDouble(result.worst_regression_ratio, 4)});
}

}  // namespace

int main() {
  std::unique_ptr<Lab> lab = MakeLab("stats_lite", 0.1);

  WorkloadOptions wopts;
  wopts.num_queries = 50;
  wopts.min_tables = 2;
  wopts.max_tables = 4;
  wopts.seed = 61;
  Workload train = GenerateWorkload(lab->catalog, wopts);
  wopts.seed = 62;
  wopts.num_queries = 25;
  Workload test = GenerateWorkload(lab->catalog, wopts);

  TablePrinter table({"Optimizer", "speedup vs native", "wins", "losses",
                      "worst regression"});

  // Bao: hint steering + latency model.
  {
    BaoOptimizer bao(lab->Context());
    double cost = TrainLearnedOptimizer(&bao, train, *lab->executor);
    std::printf("Trained bao    (executed %.2e training time units)\n", cost);
    Report(EvaluateLearnedOptimizer(&bao, lab->Context(), test,
                                    *lab->executor),
           &table);
  }
  // Lero: cardinality steering + pairwise ranking.
  {
    LeroOptimizer lero(lab->Context());
    double cost = TrainLearnedOptimizer(&lero, train, *lab->executor);
    std::printf("Trained lero   (executed %.2e training time units)\n", cost);
    Report(EvaluateLearnedOptimizer(&lero, lab->Context(), test,
                                    *lab->executor),
           &table);
  }
  // Bao + Eraser: the regression guard on top.
  {
    BaoOptimizer inner(lab->Context());
    EraserGuard guarded(lab->Context(), &inner);
    TrainLearnedOptimizer(&guarded, train, *lab->executor);
    E2eEvalResult result = EvaluateLearnedOptimizer(&guarded, lab->Context(),
                                                    test, *lab->executor);
    Report(result, &table);
    std::printf("Eraser fell back to the native plan %d times.\n\n",
                guarded.fallbacks());
  }

  std::printf("%s", table.ToString("Learned optimizers vs native").c_str());
  std::printf(
      "\nReading the table: speedup > 1 means the learned optimizer beat\n"
      "the native one on total workload time; 'losses' are queries it made\n"
      ">10%% slower — the regressions the Eraser row should eliminate.\n");
  return 0;
}
