// PilotScope demo: the paper's Section 3 walkthrough as runnable code.
// A database user talks SQL to the console; AI4DB drivers (learned
// cardinality estimation, Bao, Lero) are registered, trained in the
// background and steer the engine transparently through push/pull
// operators.
//
//   $ ./pilotscope_demo

#include <cstdio>

#include "benchlib/lab.h"
#include "cardinality/data_driven.h"
#include "pilotscope/console.h"
#include "pilotscope/drivers.h"

using namespace lqo;  // Example code; library code never does this.

int main() {
  // The "database": engine + optimizer behind a PilotScope interactor.
  std::unique_ptr<Lab> lab = MakeLab("stats_lite", 0.1);
  EngineInteractor interactor(&lab->catalog, lab->optimizer.get(),
                              lab->estimator.get(), lab->executor.get());
  PilotScopeConsole console(&lab->catalog, &interactor);

  // Step 1 (paper): install drivers. Each is an AI4DB task packaged
  // behind Init()/Algo().
  DataDrivenEstimator bayesnet("bayesnet", &lab->catalog, &lab->stats,
                               JoinCombineMode::kKeyBuckets);
  bayesnet.SetUniformModelKind(TableModelKind::kBayesNet);
  bayesnet.Build();
  LQO_CHECK(console
                .RegisterDriver(std::make_unique<CardinalityDriver>(&bayesnet))
                .ok());
  LQO_CHECK(console.RegisterDriver(std::make_unique<BaoDriver>()).ok());
  LQO_CHECK(console.RegisterDriver(std::make_unique<LeroDriver>()).ok());
  std::printf("Registered drivers:\n");
  for (const std::string& name : console.driver_names()) {
    std::printf("  - %s\n", name.c_str());
  }

  const std::string sql =
      "SELECT COUNT(*) FROM users u, posts p, comments c "
      "WHERE u.id = p.owner_user_id AND p.id = c.post_id "
      "AND u.reputation >= 3000 AND c.score BETWEEN 1 AND 10";

  // Step 2: the user runs SQL with no driver — plain native execution.
  auto native = console.ExecuteSql(sql);
  LQO_CHECK(native.ok()) << native.status().ToString();
  std::printf("\n[native]      COUNT(*) = %llu   latency = %.0f units\n",
              static_cast<unsigned long long>(native->row_count),
              native->time_units);

  // Step 3: activate the learned-CE driver — same SQL, transparent
  // steering via batched cardinality injection.
  LQO_CHECK(console.ActivateDriver("ce_driver(bayesnet)").ok());
  interactor.ResetOpCounts();
  auto steered = console.ExecuteSql(sql);
  LQO_CHECK(steered.ok());
  std::printf("[ce driver]   COUNT(*) = %llu   latency = %.0f units   "
              "(%d pushes, %d pulls)\n",
              static_cast<unsigned long long>(steered->row_count),
              steered->time_units, interactor.op_counts().pushes,
              interactor.op_counts().pulls);

  // Step 4: train and activate the Bao driver (collect data -> train ->
  // serve, the PilotScope workflow).
  WorkloadOptions wopts;
  wopts.num_queries = 30;
  wopts.min_tables = 2;
  wopts.max_tables = 4;
  wopts.seed = 3;
  Workload training = GenerateWorkload(lab->catalog, wopts);
  LQO_CHECK(console.ActivateDriver("bao_driver").ok());
  std::printf("\nTraining bao_driver on %zu queries...\n",
              training.queries.size());
  LQO_CHECK(console.TrainActiveDriver(training).ok());
  interactor.ResetOpCounts();
  auto bao = console.ExecuteSql(sql);
  LQO_CHECK(bao.ok());
  std::printf("[bao driver]  COUNT(*) = %llu   latency = %.0f units   "
              "(%d pushes, %d pulls)\n",
              static_cast<unsigned long long>(bao->row_count),
              bao->time_units, interactor.op_counts().pushes,
              interactor.op_counts().pulls);

  // Step 5: results are identical whatever runs underneath — the driver is
  // transparent to the database user.
  LQO_CHECK_EQ(native->row_count, steered->row_count);
  LQO_CHECK_EQ(native->row_count, bao->row_count);
  std::printf("\nAll drivers returned identical results — steering is "
              "transparent to the user.\n");
  return 0;
}
